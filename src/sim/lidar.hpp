#pragma once
// Ray-cast LiDAR model (stands in for CARLA's 64-channel roof LiDAR).
//
// The sensor spins through a configurable set of azimuths; each azimuth is a
// 2-D ray over the scene's object footprints (vehicles, pedestrians, static
// props, buildings). The nearest hit occludes everything behind it — exactly
// the line-of-sight limitation the paper's system exists to overcome. For a
// hit at horizontal distance d, every vertical channel whose elevation puts
// the beam between the object's base and top produces a return; downward
// channels that reach the ground before any obstacle produce ground returns
// (which the vehicle-side pipeline later removes by z-threshold).
//
// Point counts scale with channels x azimuth resolution, so the bandwidth
// experiments can run the paper's ~1M-point frames or a proportionally
// scaled-down sensor with identical geometry.

#include <cstdint>
#include <random>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/det_hash.hpp"
#include "geom/mat4.hpp"
#include "geom/obb.hpp"
#include "pointcloud/pointcloud.hpp"
#include "sim/types.hpp"

namespace erpd::sim {

struct LidarConfig {
  int channels{32};
  double vertical_fov_min_deg{-24.0};
  double vertical_fov_max_deg{4.0};
  /// Horizontal angular resolution (degrees); 0.4 deg -> 900 azimuths.
  double azimuth_step_deg{0.4};
  double max_range{50.0};
  /// Gaussian range noise (meters); 0 disables.
  double noise_sigma{0.01};

  int azimuth_count() const {
    return static_cast<int>(360.0 / azimuth_step_deg);
  }
  /// Upper bound on returns per frame.
  std::size_t max_points() const {
    return static_cast<std::size_t>(channels) *
           static_cast<std::size_t>(azimuth_count());
  }
};

/// Something a LiDAR beam can hit: a vertical prism over a planar footprint.
struct LidarTarget {
  geom::Obb footprint;
  double base_z{0.0};
  double height{1.6};
  /// Agent id for dynamic objects; negative ids mark static scenery.
  AgentId id{kInvalidAgent};
};

struct LidarScan {
  /// Returns in the sensor frame (x forward at yaw=0 ... standard right-
  /// handed frame; z up, sensor at origin).
  pc::PointCloud cloud;
  /// Number of returns per dynamic agent id (ids >= 0 only). Consumers do
  /// keyed lookups (sees()) or commutative folds only — never order-bearing
  /// iteration — so a hash map is safe here; core::DetHash makes the bucket
  /// layout platform-stable and lets the determinism torture scramble it
  /// (ERPD_DETLINT_SHUFFLE) to prove no output depends on it.
  std::unordered_map<AgentId, std::size_t, core::DetHash<AgentId>>
      points_per_agent;
  std::size_t ground_points{0};
  std::size_t static_points{0};

  bool sees(AgentId id, std::size_t min_points = 3) const {
    const auto it = points_per_agent.find(id);
    return it != points_per_agent.end() && it->second >= min_points;
  }
};

class LidarSensor {
 public:
  explicit LidarSensor(LidarConfig cfg = {});

  const LidarConfig& config() const { return cfg_; }

  /// Scan the scene from `pose` (sensor origin, world frame).
  LidarScan scan(const geom::Pose& pose, std::span<const LidarTarget> targets,
                 std::mt19937_64& rng) const;

  /// Route scans through the brute-force reference path: the pre-index
  /// O(azimuths x candidates) loop, kept as an executable specification.
  /// The accelerated path is bit-identical to it (pinned by
  /// test_lidar_equivalence). Defaults to the ERPD_LIDAR_BRUTE_FORCE
  /// environment variable (any value except "" / "0" enables it) so the
  /// whole pipeline can be cross-checked without a rebuild.
  void set_brute_force(bool brute) { brute_force_ = brute; }
  bool brute_force() const { return brute_force_; }

 private:
  LidarConfig cfg_;
  std::vector<double> elevations_;  // per-channel elevation (radians)
  /// tan(elevation) per channel, hoisted out of the per-azimuth loop (same
  /// std::tan call on the same double, so the values are bit-identical).
  std::vector<double> tan_elevations_;
  /// Per-azimuth world heading and unit direction. Pure functions of the
  /// azimuth index and configuration (never of the pose), precomputed with
  /// the scan loop's exact expressions so the accelerated path can skip one
  /// sincos per ray per scan.
  std::vector<double> azimuth_world_;
  std::vector<geom::Vec2> azimuth_dirs_;
  bool brute_force_{false};
};

/// Cheap line-of-sight test used by the driver model: true if the segment
/// from `eye` to `target_point` is not blocked by any occluder footprint.
/// The occluder list should exclude the viewer and the target themselves.
bool line_of_sight(geom::Vec2 eye, geom::Vec2 target_point,
                   std::span<const geom::Obb> occluders);

}  // namespace erpd::sim
