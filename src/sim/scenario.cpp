#include "sim/scenario.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"
#include "core/rng.hpp"
#include "geom/angle.hpp"

namespace erpd::sim {

using geom::Obb;
using geom::Polyline;
using geom::Vec2;

namespace {

VehicleParams car_params(double speed_ms, bool connected) {
  VehicleParams p;
  p.kind = AgentKind::kCar;
  p.dims = default_dims(AgentKind::kCar);
  p.idm.desired_speed = speed_ms;
  p.connected = connected;
  return p;
}

/// Looks up a route that the scenario's road geometry must provide;
/// contract-fails with the requested coordinates instead of dereferencing
/// an empty optional when the RoadConfig cannot supply it.
int require_route(const RoadNetwork& net, Arm entry, int lane, Maneuver m) {
  const std::optional<int> id = net.find_route(entry, lane, m);
  ERPD_REQUIRE(id.has_value(), "scenario: no route from arm ",
               static_cast<int>(entry), " lane ", lane, " maneuver ",
               static_cast<int>(m), " (lanes_per_direction too small?)");
  return *id;
}

VehicleParams parked_truck_params(double length = 8.5) {
  VehicleParams p;
  p.kind = AgentKind::kTruck;
  p.dims = default_dims(AgentKind::kTruck);
  p.dims.length = length;
  p.parked = true;
  return p;
}

/// Place the four corner buildings that bound sight lines at an urban
/// intersection (without them the open plane would give every driver
/// unlimited diagonal visibility, which no real intersection has).
void add_corner_buildings(World& world) {
  const double half = world.network().box_half();
  const double building_half = 10.0;
  const double d = half + 5.0 + building_half;  // sidewalk corridor in front
  for (double sx : {-1.0, 1.0}) {
    for (double sy : {-1.0, 1.0}) {
      world.add_static_obstacle(
          Obb{{sx * d, sy * d}, 0.0, 2.0 * building_half, 2.0 * building_half},
          10.0);
    }
  }
}

/// Street-front building walls flanking every arm (CARLA towns are dense
/// urban canyons; the static facades dominate raw LiDAR returns, which is
/// what makes the EMP/Unlimited uploads so much heavier than moving-object
/// extraction).
void add_street_walls(World& world) {
  const RoadNetwork& net = world.network();
  const double road_half =
      net.config().lanes_per_direction * net.config().lane_width;
  const double lateral = road_half + 6.5;
  for (int a = 0; a < kArmCount; ++a) {
    const Vec2 u = RoadNetwork::arm_direction(static_cast<Arm>(a));
    const Vec2 perp = u.perp();
    for (double side : {-1.0, 1.0}) {
      const double start = net.box_half() + 16.0;
      const double len = 55.0;
      const Vec2 center = u * (start + len * 0.5) + perp * (side * lateral);
      world.add_static_obstacle(Obb{center, u.heading(), len, 2.0}, 8.0);
    }
  }
}

/// Cars parked along the curb of every arm. They are exactly the static
/// clutter that the paper's Moving Objects Extraction discards while
/// EMP/Unlimited keep uploading it (the waiting trucks of Fig. 9b,
/// generalized).
void add_parked_cars(World& world, std::mt19937_64& rng) {
  const RoadNetwork& net = world.network();
  const double road_half =
      net.config().lanes_per_direction * net.config().lane_width;
  const double curb = road_half + 1.6;
  std::uniform_real_distribution<double> jitter(-1.5, 1.5);
  std::bernoulli_distribution keep(0.75);
  const BodyDims dims = default_dims(AgentKind::kCar);
  for (int a = 0; a < kArmCount; ++a) {
    const Vec2 u = RoadNetwork::arm_direction(static_cast<Arm>(a));
    const Vec2 perp = u.perp();
    for (double side : {-1.0, 1.0}) {
      for (double dist = net.box_half() + 14.0; dist < 65.0; dist += 9.0) {
        if (!keep(rng)) continue;
        const Vec2 pos = u * (dist + jitter(rng)) + perp * (side * curb);
        world.add_static_obstacle(
            Obb{pos, u.heading(), dims.length, dims.width}, dims.height);
      }
    }
  }
}

bool spot_free(const World& world, Vec2 pos, double clearance = 12.0) {
  for (const Vehicle& v : world.vehicles()) {
    if (distance(v.position(world.network()), pos) < clearance) return false;
  }
  return true;
}

/// Fill the approaches with background traffic until `total` vehicles exist.
/// `max_s` optionally caps the spawn arc length per (arm, lane) so that
/// background cars stay behind scripted ones.
void add_background_traffic(World& world, const ScenarioConfig& cfg,
                            std::mt19937_64& rng,
                            const std::vector<std::pair<LaneRef, double>>& max_s) {
  const RoadNetwork& net = world.network();
  const double speed = kmh_to_ms(cfg.speed_kmh);
  std::bernoulli_distribution connected(cfg.connected_fraction);
  std::uniform_real_distribution<double> jitter(0.0, 4.0);
  std::uniform_int_distribution<int> maneuver_pick(0, 2);

  int rank = 0;
  int safety = 0;
  while (static_cast<int>(world.vehicles().size()) < cfg.total_vehicles &&
         safety++ < 1000) {
    for (int a = 0; a < kArmCount &&
                    static_cast<int>(world.vehicles().size()) < cfg.total_vehicles;
         ++a) {
      const Arm arm = static_cast<Arm>(a);
      for (int lane = 0; lane < net.config().lanes_per_direction &&
                         static_cast<int>(world.vehicles().size()) <
                             cfg.total_vehicles;
           ++lane) {
        // Pick a maneuver this lane permits.
        std::optional<int> route_id;
        for (int attempt = 0; attempt < 4 && !route_id; ++attempt) {
          route_id = net.find_route(
              arm, lane, static_cast<Maneuver>(maneuver_pick(rng) % 3));
        }
        if (!route_id) route_id = net.find_route(arm, lane, Maneuver::kStraight);
        if (!route_id) continue;
        const Route& route = net.route(*route_id);

        double s = route.stop_line_s - 14.0 - rank * 13.0 - jitter(rng);
        for (const auto& [lr, cap] : max_s) {
          if (lr == LaneRef{arm, lane}) s = std::min(s, cap - rank * 13.0);
        }
        if (s < 4.0) continue;
        const Vec2 pos = route.path.point_at(s);
        if (!spot_free(world, pos)) continue;

        // Queued vehicles at a red light start stopped; flowing ones cruise.
        const bool green =
            world.signals().state(arm, 0.0) == SignalController::Light::kGreen;
        const double v0 = green ? speed : 0.0;
        world.add_vehicle(car_params(speed, connected(rng)), *route_id, s, v0);
      }
    }
    ++rank;
  }
}

/// Background pedestrians walk the sidewalks parallel to the arms (between
/// the curb parking and the buildings). They load the perception pipeline —
/// uploads, tracking, Rule-3 clustering — without entering the roadway, so
/// they never interfere with the scripted conflict.
void add_background_pedestrians(World& world, const ScenarioConfig& cfg,
                                std::mt19937_64& rng, Arm skip_arm) {
  const RoadNetwork& net = world.network();
  const double road_half =
      net.config().lanes_per_direction * net.config().lane_width;
  const double sidewalk = road_half + 3.8;
  std::uniform_int_distribution<int> arm_pick(0, kArmCount - 1);
  std::bernoulli_distribution reverse(0.5);
  std::bernoulli_distribution east_side(0.5);
  std::uniform_real_distribution<double> speed(1.1, 1.6);
  std::uniform_real_distribution<double> start_dist(12.0, 45.0);
  int placed = 0;
  int safety = 0;
  while (placed < cfg.pedestrians && safety++ < 200) {
    const Arm arm = static_cast<Arm>(arm_pick(rng));
    if (arm == skip_arm) continue;  // keep the scripted area clear
    const Vec2 u = RoadNetwork::arm_direction(arm);
    const Vec2 perp = u.perp() * (east_side(rng) ? 1.0 : -1.0);
    Vec2 a = u * start_dist(rng) + perp * sidewalk;
    Vec2 b = u * 70.0 + perp * sidewalk;
    if (reverse(rng)) std::swap(a, b);
    PedestrianParams pp;
    pp.walk_speed = speed(rng);
    world.add_pedestrian(pp, Polyline{{a, b}}, 0.0);
    ++placed;
  }
}

World make_world(const ScenarioConfig& cfg) {
  cfg.validate();
  WorldConfig wc = cfg.world;
  wc.seed = cfg.seed;
  // The scripted conflicts play out in the first ~15 s; keep the main axis
  // green throughout so the signal never preempts the experiment.
  wc.signal.green = std::max(wc.signal.green, 40.0);
  return World{RoadNetwork{cfg.road}, wc};
}

}  // namespace

void ScenarioConfig::validate() const {
  ERPD_REQUIRE(std::isfinite(speed_kmh) && speed_kmh > 0.0 &&
                   speed_kmh <= 200.0,
               "ScenarioConfig: speed_kmh must be in (0, 200], got ",
               speed_kmh);
  ERPD_REQUIRE(std::isfinite(connected_fraction) &&
                   connected_fraction >= 0.0 && connected_fraction <= 1.0,
               "ScenarioConfig: connected_fraction must be in [0, 1], got ",
               connected_fraction);
  ERPD_REQUIRE(total_vehicles >= 0 && total_vehicles <= 10000,
               "ScenarioConfig: total_vehicles must be in [0, 10000], got ",
               total_vehicles);
  ERPD_REQUIRE(pedestrians >= 0 && pedestrians <= 10000,
               "ScenarioConfig: pedestrians must be in [0, 10000], got ",
               pedestrians);
  ERPD_REQUIRE(std::isfinite(time_to_conflict) && time_to_conflict > 0.0,
               "ScenarioConfig: time_to_conflict must be > 0, got ",
               time_to_conflict);
  ERPD_REQUIRE(std::isfinite(follower_gap) && follower_gap > 0.0,
               "ScenarioConfig: follower_gap must be > 0, got ", follower_gap);
}

void add_intersection_scenery(World& world) {
  add_corner_buildings(world);
  add_street_walls(world);
}

Scenario make_unprotected_left_turn(const ScenarioConfig& cfg) {
  Scenario sc{make_world(cfg), kInvalidAgent, kInvalidAgent, {}, kInvalidAgent};
  World& world = sc.world;
  const RoadNetwork& net = world.network();
  const double speed = kmh_to_ms(cfg.speed_kmh);
  std::mt19937_64 rng = core::seeded_rng(cfg.seed * 7919 + 13);

  add_corner_buildings(world);
  add_street_walls(world);
  add_parked_cars(world, rng);

  const int ego_route = require_route(net, Arm::kSouth, 0, Maneuver::kLeft);
  const int threat_route = require_route(net, Arm::kNorth, 1, Maneuver::kStraight);

  // Auto-calibrate: both reach the crossing point simultaneously.
  const auto crossing =
      net.route(ego_route).path.first_crossing(net.route(threat_route).path);
  ERPD_ENSURE(crossing.has_value(), "left-turn routes do not cross");
  const double travel = speed * cfg.time_to_conflict;
  const double ego_s = std::max(crossing->s_this - travel, 4.0);
  const double threat_s = std::max(crossing->s_other - travel, 4.0);

  VehicleParams ego_params = car_params(speed, /*connected=*/true);
  ego_params.attentive = false;  // saved only by dissemination
  sc.ego = world.add_vehicle(ego_params, ego_route, ego_s, speed);

  std::bernoulli_distribution conn(cfg.connected_fraction);
  VehicleParams threat_params = car_params(speed, conn(rng));
  threat_params.attentive = false;
  sc.threat =
      world.add_vehicle(threat_params, threat_route, threat_s, speed);

  // A connected observer following the threat: it perceives the threat the
  // whole way (paper Fig. 8: "other vehicles, such as E, can capture p and
  // upload it to the edge server").
  if (threat_s - 20.0 > 4.0) {
    world.add_vehicle(car_params(speed, /*connected=*/true), threat_route,
                      threat_s - 20.0, speed);
  }

  // Occluder: box truck waiting inside the intersection to turn left from the
  // opposite (northern) left lane — the classic Fig. 1 "truck D".
  {
    const int truck_route = require_route(net, Arm::kNorth, 0, Maneuver::kLeft);
    const Route& tr = net.route(truck_route);
    // Stopped just past its stop line, nose into the box, waiting for a gap.
    double wait_s = tr.stop_line_s + 6.5;
    VehicleParams tp = parked_truck_params(6.5);
    sc.occluders.push_back(world.add_vehicle(tp, truck_route, wait_s, 0.0));
  }

  // Tailgating platoon follower behind the ego (for the follower ablation).
  {
    VehicleParams fp = car_params(speed, /*connected=*/true);
    fp.attentive = false;
    const double gap = cfg.follower_gap;
    if (ego_s - gap > 4.0) {
      sc.ego_follower =
          world.add_vehicle(fp, ego_route, ego_s - gap, speed);
    }
  }

  // Keep conflicting lanes clear ahead of the scripted pair.
  const std::vector<std::pair<LaneRef, double>> caps = {
      {{Arm::kSouth, 0}, ego_s - 18.0},
      {{Arm::kNorth, 1}, threat_s - 18.0},
      {{Arm::kNorth, 0}, net.route(ego_route).stop_line_s - 20.0},
  };
  add_background_traffic(world, cfg, rng, caps);
  add_background_pedestrians(world, cfg, rng, Arm::kSouth);
  return sc;
}

Scenario make_red_light_violation(const ScenarioConfig& cfg) {
  Scenario sc{make_world(cfg), kInvalidAgent, kInvalidAgent, {}, kInvalidAgent};
  World& world = sc.world;
  const RoadNetwork& net = world.network();
  const double speed = kmh_to_ms(cfg.speed_kmh);
  std::mt19937_64 rng = core::seeded_rng(cfg.seed * 104729 + 17);

  add_corner_buildings(world);
  add_street_walls(world);
  add_parked_cars(world, rng);

  // Ego goes straight north on green; violator runs the red from the west.
  const int ego_route = require_route(net, Arm::kSouth, 1, Maneuver::kStraight);
  const int violator_route =
      require_route(net, Arm::kWest, 0, Maneuver::kStraight);

  const auto crossing =
      net.route(ego_route).path.first_crossing(net.route(violator_route).path);
  ERPD_ENSURE(crossing.has_value(), "red-light routes do not cross");
  const double travel = speed * cfg.time_to_conflict;
  const double ego_s = std::max(crossing->s_this - travel, 4.0);
  double violator_s = std::max(crossing->s_other - travel, 4.0);

  VehicleParams ego_params = car_params(speed, /*connected=*/true);
  ego_params.attentive = false;  // saved only by dissemination
  sc.ego = world.add_vehicle(ego_params, ego_route, ego_s, speed);

  VehicleParams vio = car_params(speed, /*connected=*/false);
  vio.runs_red_light = true;
  vio.attentive = false;
  sc.threat = world.add_vehicle(vio, violator_route, violator_s, speed);

  // Connected observer trailing the violator (it will stop at the red light
  // itself, but keeps the violator in view and uploads it).
  if (violator_s - 20.0 > 4.0) {
    world.add_vehicle(car_params(speed, /*connected=*/true), violator_route,
                      violator_s - 20.0, speed);
  }

  // Occluders: trucks queued at the red light on the west arm's right-turn
  // lane, blocking the diagonal sight line between ego and violator.
  {
    const int truck_route = require_route(net, Arm::kWest, net.config().lanes_per_direction - 1, Maneuver::kRight);
    const Route& tr = net.route(truck_route);
    for (int k = 0; k < 2; ++k) {
      VehicleParams tp = parked_truck_params(8.5);
      const double s = tr.stop_line_s - 4.5 - k * 10.5;
      sc.occluders.push_back(world.add_vehicle(tp, truck_route, s, 0.0));
    }
  }

  // Platoon follower behind the ego.
  {
    VehicleParams fp = car_params(speed, /*connected=*/true);
    fp.attentive = false;
    const double gap = cfg.follower_gap;
    if (ego_s - gap > 4.0) {
      sc.ego_follower = world.add_vehicle(fp, ego_route, ego_s - gap, speed);
    }
  }

  const std::vector<std::pair<LaneRef, double>> caps = {
      {{Arm::kSouth, 1}, ego_s - 18.0},
      // Keep the adjacent left-turn lane behind the ego too: a background
      // left-turner yielding mid-box would otherwise shield the ego from the
      // scripted conflict.
      {{Arm::kSouth, 0}, ego_s - 18.0},
      {{Arm::kWest, 0}, violator_s - 18.0},
      // Oncoming (southbound) traffic held far back so the scripted conflict
      // resolves first.
      {{Arm::kNorth, 0}, net.route(ego_route).stop_line_s - 60.0},
      {{Arm::kNorth, 1}, net.route(ego_route).stop_line_s - 60.0},
  };
  add_background_traffic(world, cfg, rng, caps);
  add_background_pedestrians(world, cfg, rng, Arm::kWest);
  return sc;
}

Scenario make_occluded_pedestrian(const ScenarioConfig& cfg) {
  Scenario sc{make_world(cfg), kInvalidAgent, kInvalidAgent, {}, kInvalidAgent};
  World& world = sc.world;
  const RoadNetwork& net = world.network();
  const double speed = kmh_to_ms(cfg.speed_kmh);
  std::mt19937_64 rng = core::seeded_rng(cfg.seed * 6151 + 29);

  add_corner_buildings(world);
  add_street_walls(world);
  add_parked_cars(world, rng);

  const int ego_route = require_route(net, Arm::kSouth, 1, Maneuver::kStraight);
  const Route& er = net.route(ego_route);

  // Pedestrian crossing the south crosswalk from east to west, stepping out
  // from behind a truck parked on the east shoulder of the south arm.
  Polyline cw = net.crosswalk(Arm::kSouth).path;
  {
    // Crosswalk is built west->east; reverse so the pedestrian walks
    // east->west, and extend the start 4 m onto the sidewalk so the walk
    // toward the ego lane takes several seconds (time for the edge pipeline
    // to detect, score and disseminate).
    std::vector<Vec2> pts;
    const Vec2 east_end = cw.points().back();
    const Vec2 dir = (cw.points().front() - east_end).normalized();
    pts.push_back(east_end - dir * 4.0);
    for (auto it = cw.points().rbegin(); it != cw.points().rend(); ++it) {
      pts.push_back(*it);
    }
    cw = Polyline{std::move(pts)};
  }
  PedestrianParams pp;
  pp.walk_speed = 1.4;

  // Where does the pedestrian cross the ego lane?
  const auto crossing = er.path.first_crossing(cw);
  ERPD_ENSURE(crossing.has_value(), "pedestrian path does not cross ego lane");
  const double t_walk = crossing->s_other / pp.walk_speed;
  const double ego_s =
      std::max(crossing->s_this - speed * t_walk, 4.0);

  VehicleParams ego_params = car_params(speed, /*connected=*/true);
  ego_params.attentive = false;  // saved only by dissemination
  sc.ego = world.add_vehicle(ego_params, ego_route, ego_s, speed);
  sc.threat = world.add_pedestrian(pp, cw, 0.0);

  // Parked truck on the shoulder east of the ego lane, just south of the
  // crosswalk — hides the pedestrian from the approaching ego.
  {
    const double road_half =
        net.config().lanes_per_direction * net.config().lane_width;
    const double shoulder_x = road_half + 1.6;
    const double truck_len = 8.5;
    const double y_center = -(net.box_half() + cfg.road.crosswalk_offset +
                              1.5 + truck_len * 0.5);
    world.add_static_obstacle(
        Obb{{shoulder_x, y_center}, geom::kPi / 2.0, truck_len, 2.5}, 3.4);
  }

  // A connected observer on the opposite approach that can see the pedestrian
  // (the "vehicle E" of Fig. 8a).
  {
    const int obs_route = require_route(net, Arm::kNorth, 1, Maneuver::kStraight);
    const Route& obr = net.route(obs_route);
    world.add_vehicle(car_params(speed * 0.8, /*connected=*/true), obs_route,
                      obr.stop_line_s - 25.0, speed * 0.8);
  }

  const std::vector<std::pair<LaneRef, double>> caps = {
      {{Arm::kSouth, 1}, ego_s - 18.0},
  };
  add_background_traffic(world, cfg, rng, caps);
  add_background_pedestrians(world, cfg, rng, Arm::kSouth);
  return sc;
}

std::vector<CrowdPedestrian> generate_crosswalk_crowd(const RoadNetwork& net,
                                                      int count,
                                                      std::mt19937_64& rng) {
  std::vector<CrowdPedestrian> out;
  out.reserve(static_cast<std::size_t>(count));
  const double corner_d = net.box_half() + net.config().crosswalk_offset;
  // The four corners, each adjacent to two crosswalk walking directions.
  struct Corner {
    Vec2 pos;
    double dir_a;  // heading options (radians)
    double dir_b;
  };
  const std::vector<Corner> corners = {
      {{corner_d, corner_d}, geom::kPi, -geom::kPi / 2.0},        // NE
      {{-corner_d, corner_d}, 0.0, -geom::kPi / 2.0},             // NW
      {{-corner_d, -corner_d}, 0.0, geom::kPi / 2.0},             // SW
      {{corner_d, -corner_d}, geom::kPi, geom::kPi / 2.0},        // SE
  };
  std::uniform_int_distribution<std::size_t> corner_pick(0, corners.size() - 1);
  std::bernoulli_distribution dir_pick(0.5);
  std::normal_distribution<double> scatter(0.0, 1.4);
  std::normal_distribution<double> heading_jitter(0.0, geom::deg_to_rad(3.0));
  std::uniform_real_distribution<double> speed(1.0, 1.7);
  for (int i = 0; i < count; ++i) {
    const Corner& c = corners[corner_pick(rng)];
    CrowdPedestrian p;
    p.position = c.pos + Vec2{scatter(rng), scatter(rng)};
    p.heading = geom::wrap_angle((dir_pick(rng) ? c.dir_a : c.dir_b) +
                                 heading_jitter(rng));
    p.speed = speed(rng);
    out.push_back(p);
  }
  return out;
}

}  // namespace erpd::sim
