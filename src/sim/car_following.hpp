#pragma once
// Car-following models.
//
// The simulator drives background vehicles with IDM (a standard microscopic
// controller, standing in for CARLA's default agent). The relevance
// estimator uses Pipes' rule [36] and the Gipps time-gap criterion [37] to
// decide whether a *follower* is safe behind its leader (paper §III-A.2):
// a follower violating both criteria inherits alpha x the leader's relevance.

#include <limits>

namespace erpd::sim {

/// Pipes' rule (1953): keep one car length per 10 mph of follower speed.
struct PipesModel {
  /// Nominal car length used by the rule (paper: 4-5 m).
  double car_length{4.5};
  /// Minimum standstill clearance.
  double min_gap{2.0};

  /// Required bumper-to-bumper distance at follower speed `v` (m/s).
  double safe_distance(double v) const;

  /// True if the follower keeps at least the Pipes distance.
  bool compliant(double gap, double follower_speed) const {
    return gap >= safe_distance(follower_speed);
  }
};

/// Gipps (1981) behavioural model. `next_speed` implements the full two-term
/// law; `compliant` implements the paper's simplified criterion that the
/// time gap must be at least 1.5x the driver reaction time.
struct GippsModel {
  double max_accel{1.7};        // a   (m/s^2)
  double braking{3.0};          // b   (>0, own comfortable braking, m/s^2)
  double leader_braking{3.0};   // b^  (estimate of leader braking, m/s^2)
  double desired_speed{13.9};   // V   (m/s)
  double reaction_time{1.0};    // theta (s); human average ~1 s
  double standstill_gap{2.0};   // s0  (m), effective leader size margin

  /// Required minimum time gap = 1.5 * reaction_time (paper §III-A.2).
  double safe_time_gap() const { return 1.5 * reaction_time; }

  /// True if gap / v_f meets the safe time gap (always true at standstill).
  bool compliant(double gap, double follower_speed) const;

  /// Speed after one reaction-time step given the leader state.
  /// `gap` is bumper-to-bumper distance; pass +inf / any speed when free.
  double next_speed(double v_follower, double v_leader, double gap) const;
};

/// Intelligent Driver Model — used as the default longitudinal controller.
struct IdmModel {
  double desired_speed{13.9};   // v0 (m/s)
  double time_headway{1.2};     // T  (s)
  double max_accel{2.0};        // a  (m/s^2)
  double comfort_decel{2.5};    // b  (m/s^2)
  double min_gap{2.0};          // s0 (m)
  double accel_exponent{4.0};   // delta

  /// Acceleration for the follower; pass gap = +inf for a free road.
  double acceleration(double v, double v_leader, double gap) const;

  static constexpr double free_road() {
    return std::numeric_limits<double>::infinity();
  }
};

}  // namespace erpd::sim
