#include "sim/world.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/check.hpp"
#include "core/rng.hpp"

namespace erpd::sim {

using geom::Obb;
using geom::Vec2;

World::World(RoadNetwork network, WorldConfig cfg)
    : net_(std::move(network)),
      cfg_(cfg),
      signals_(cfg.signal),
      lidar_(cfg.lidar),
      rng_(core::seeded_rng(cfg.seed)),
      maneuver_planner_(cfg.maneuver) {}

AgentId World::add_vehicle(const VehicleParams& params, int route_id,
                           double start_s, double start_speed) {
  ERPD_REQUIRE(route_id >= 0 &&
                   static_cast<std::size_t>(route_id) < net_.routes().size(),
               "World::add_vehicle: route ", route_id, " out of range [0, ",
               net_.routes().size(), ")");
  ERPD_REQUIRE(start_speed >= 0.0,
               "World::add_vehicle: start_speed must be >= 0, got ",
               start_speed);
  const AgentId id = next_id_++;
  vehicles_.emplace_back(id, params, route_id, start_s, start_speed);
  return id;
}

AgentId World::schedule_vehicle(double spawn_time, const VehicleParams& params,
                                int route_id, double start_s,
                                double start_speed, int lane_change_direction,
                                double lane_change_trigger_s) {
  ERPD_REQUIRE(route_id >= 0 &&
                   static_cast<std::size_t>(route_id) < net_.routes().size(),
               "World::schedule_vehicle: route ", route_id,
               " out of range [0, ", net_.routes().size(), ")");
  ERPD_REQUIRE(spawn_time >= 0.0 && std::isfinite(spawn_time),
               "World::schedule_vehicle: spawn_time must be finite and >= 0, "
               "got ", spawn_time);
  ERPD_REQUIRE(start_speed >= 0.0,
               "World::schedule_vehicle: start_speed must be >= 0, got ",
               start_speed);
  ERPD_REQUIRE(lane_change_direction >= -1 && lane_change_direction <= 1,
               "World::schedule_vehicle: lane_change_direction must be in "
               "{-1, 0, 1}, got ", lane_change_direction);
  const AgentId id = next_id_++;
  pending_.push_back({spawn_time, params, route_id, start_s, start_speed, id,
                      lane_change_direction, lane_change_trigger_s});
  return id;
}

void World::materialize_pending_spawns() {
  if (pending_.empty()) return;
  std::vector<PendingVehicle> still_pending;
  still_pending.reserve(pending_.size());
  for (PendingVehicle& p : pending_) {
    bool spawn = p.spawn_time <= time_;
    if (spawn) {
      // Hold the spawn while the spot is blocked so a late spawn can never
      // materialize inside another vehicle (instant phantom collision).
      const geom::Vec2 pos = net_.route(p.route_id).path.point_at(p.start_s);
      for (const Vehicle& v : vehicles_) {
        if (v.finished(net_)) continue;
        if (distance(v.position(net_), pos) <
            p.params.dims.length + v.params().dims.length) {
          spawn = false;
          break;
        }
      }
    }
    if (!spawn) {
      still_pending.push_back(std::move(p));
      continue;
    }
    vehicles_.emplace_back(p.id, p.params, p.route_id, p.start_s,
                           p.start_speed);
    if (p.lane_change_direction != 0) {
      vehicles_.back().set_lane_change_directive(p.lane_change_direction,
                                                 p.lane_change_trigger_s);
    }
  }
  pending_ = std::move(still_pending);
}

AgentId World::add_pedestrian(const PedestrianParams& params,
                              geom::Polyline path, double start_s) {
  const AgentId id = next_id_++;
  pedestrians_.emplace_back(id, params, std::move(path), start_s);
  return id;
}

void World::add_static_obstacle(const geom::Obb& footprint, double height) {
  statics_.push_back({footprint, height});
}

Vehicle* World::find_vehicle(AgentId id) {
  for (Vehicle& v : vehicles_) {
    if (v.id() == id) return &v;
  }
  return nullptr;
}

const Vehicle* World::find_vehicle(AgentId id) const {
  for (const Vehicle& v : vehicles_) {
    if (v.id() == id) return &v;
  }
  return nullptr;
}

const Pedestrian* World::find_pedestrian(AgentId id) const {
  for (const Pedestrian& p : pedestrians_) {
    if (p.id() == id) return &p;
  }
  return nullptr;
}

std::uint64_t World::pair_key(AgentId a, AgentId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint32_t>(b);
}

double World::delayed_speed(AgentId id, double delay) const {
  const auto it = speed_hist_.find(id);
  if (it == speed_hist_.end() || it->second.empty()) {
    const Vehicle* v = find_vehicle(id);
    return v != nullptr ? v->speed() : 0.0;
  }
  const double want = time_ - delay;
  // History is ordered by time; return the newest sample not after `want`.
  double best = it->second.front().second;
  for (const auto& [t, v] : it->second) {
    if (t <= want) {
      best = v;
    } else {
      break;
    }
  }
  return best;
}

std::optional<std::size_t> World::find_leader(std::size_t vi) const {
  const Vehicle& me = vehicles_[vi];
  const geom::Polyline& path = net_.route(me.route_id()).path;
  const double my_s = me.s();
  std::optional<std::size_t> best;
  double best_gap = cfg_.leader_lookahead;
  for (std::size_t j = 0; j < vehicles_.size(); ++j) {
    if (j == vi) continue;
    const Vehicle& other = vehicles_[j];
    if (other.finished(net_)) continue;
    double lateral = 0.0;
    const double s_other = path.project(other.position(net_), &lateral);
    if (lateral > net_.config().lane_width * 0.5) continue;
    const double center_gap = s_other - my_s;
    if (center_gap <= 0.0) continue;
    const double gap = center_gap - 0.5 * me.params().dims.length -
                       0.5 * other.params().dims.length;
    if (gap < best_gap) {
      best_gap = gap;
      best = j;
    }
  }
  return best;
}

std::optional<World::ConflictInfo> World::hazard_conflict(
    const Vehicle& me, AgentId hazard_id) const {
  // Current hazard kinematics (ground truth of the agent, as a driver who is
  // aware of it would estimate).
  Vec2 hpos;
  Vec2 hvel;
  double hlen = 1.0;
  if (const Vehicle* hv = find_vehicle(hazard_id)) {
    if (hv->finished(net_) || hv->params().parked) return std::nullopt;
    hpos = hv->position(net_);
    hvel = hv->velocity(net_);
    hlen = hv->params().dims.length;
  } else if (const Pedestrian* hp = find_pedestrian(hazard_id)) {
    if (hp->finished()) return std::nullopt;
    hpos = hp->position();
    hvel = hp->velocity();
    hlen = hp->params().dims.length;
  } else {
    return std::nullopt;
  }

  const geom::Polyline& path = net_.route(me.route_id()).path;
  const double lookahead =
      std::max(25.0, me.speed() * cfg_.hazard_horizon + 15.0);
  const geom::Polyline ahead = path.slice(me.s(), me.s() + lookahead);
  if (ahead.empty()) return std::nullopt;

  const double hspeed = hvel.norm();
  const double my_speed = std::max(me.speed(), 0.5);
  if (hspeed < 0.3) {
    // (Nearly) stationary hazard sitting on my path: conflict at its
    // location; it is "at" the conflict point now (t_hazard = 0).
    double lateral = 0.0;
    const double s_on = ahead.project(hpos, &lateral);
    if (lateral > 0.5 * (me.params().dims.width + hlen)) return std::nullopt;
    return ConflictInfo{me.s() + s_on, s_on / my_speed, 0.0};
  }

  // Moving hazard: straight-line projection. The projected path stops just
  // past the hazard's current reach so that a hazard that has already
  // passed the crossing no longer conflicts.
  const geom::Polyline hpath{
      {hpos,
       hpos + hvel.normalized() * (hspeed * (cfg_.hazard_horizon + 3.0) + hlen)}};
  const auto crossing = ahead.first_crossing(hpath);
  if (!crossing) return std::nullopt;
  return ConflictInfo{me.s() + crossing->s_this, crossing->s_this / my_speed,
                      crossing->s_other / hspeed};
}

double World::control_vehicle(Vehicle& me) {
  const Route& route = net_.route(me.route_id());
  const IdmModel& idm = me.params().idm;

  // 1) Car following with reaction-delayed leader speed.
  double accel = idm.acceleration(me.speed(), 0.0, IdmModel::free_road());
  std::size_t my_index = 0;
  for (std::size_t i = 0; i < vehicles_.size(); ++i) {
    if (vehicles_[i].id() == me.id()) {
      my_index = i;
      break;
    }
  }
  if (const auto leader = find_leader(my_index)) {
    const Vehicle& lead = vehicles_[*leader];
    const geom::Polyline& path = route.path;
    const double s_lead = path.project(lead.position(net_));
    const double gap = s_lead - me.s() - 0.5 * me.params().dims.length -
                       0.5 * lead.params().dims.length;
    const double v_lead_seen =
        delayed_speed(lead.id(), me.params().reaction_time);
    accel = std::min(
        accel, idm.acceleration(me.speed(), v_lead_seen, std::max(gap, 0.05)));
  }

  // Inattentive drivers execute the car-following command they computed one
  // reaction time ago (human output delay). Attentive drivers (and the
  // automated controller baseline) react instantly.
  if (!me.params().attentive) {
    auto& hist = follow_accel_hist_[me.id()];
    hist.emplace_back(time_, accel);
    while (!hist.empty() && hist.front().first < time_ - 3.0) hist.pop_front();
    const double want = time_ - me.params().reaction_time;
    double delayed = hist.front().second;
    for (const auto& [ht, ha] : hist) {
      if (ht <= want) {
        delayed = ha;
      } else {
        break;
      }
    }
    accel = delayed;
  }

  // 2) Traffic signal at the stop line.
  if (!me.params().runs_red_light && me.s() < route.stop_line_s) {
    const auto light = signals_.state(route.entry_arm, time_);
    bool must_stop = light == SignalController::Light::kRed;
    if (light == SignalController::Light::kYellow) {
      const double dist = route.stop_line_s - me.s();
      const double comfort_stop =
          me.speed() * me.speed() / (2.0 * idm.comfort_decel);
      must_stop = dist > comfort_stop;  // stop if we comfortably can
    }
    if (must_stop) {
      const double gap =
          route.stop_line_s - me.s() - 0.5 * me.params().dims.length;
      accel = std::min(accel,
                       idm.acceleration(me.speed(), 0.0, std::max(gap, 0.05)));
    }
  }

  // 3) Hazard reaction: hard brake `reaction_time` after becoming aware of a
  //    conflicting object. Per the paper's evaluation setup, awareness comes
  //    from disseminated perception data; own-sensor sightings only count
  //    when react_to_visible_hazards is enabled.
  const bool reacts_to_visible =
      me.params().attentive || cfg_.react_to_visible_hazards;
  for (const auto& [hazard_id, knowledge] : me.known_hazards()) {
    if (!knowledge.from_dissemination && !reacts_to_visible) continue;
    if (time_ - knowledge.aware_since < me.params().reaction_time) continue;

    const auto conflict = hazard_conflict(me, hazard_id);

    // Yield-latch policy: start yielding when the conflict is imminent;
    // hold a fixed stop target until the hazard clears the crossing (the
    // geometric conflict disappears); never creep forward on momentary TTC
    // fluctuation.
    if (me.yielding_to(hazard_id)) {
      if (!conflict) {
        me.end_yield(hazard_id);
        continue;
      }
    } else {
      if (!conflict) continue;
      const bool imminent = conflict->t_me < cfg_.hazard_horizon &&
                            conflict->t_hazard < cfg_.hazard_horizon &&
                            std::abs(conflict->t_me - conflict->t_hazard) <
                                cfg_.conflict_margin + 2.0;
      if (!imminent) continue;
      me.start_yield(hazard_id,
                     conflict->s_conflict - 6.0 - 0.5 * me.params().dims.length);
    }

    const double stop_gap = me.yield_stop_s(hazard_id) - me.s();
    if (stop_gap > 0.3) {
      accel = std::min(accel, idm.acceleration(me.speed(), 0.0, stop_gap));
    } else if (me.speed() > 0.5 &&
               conflict->s_conflict - me.s() > 0.5 * me.params().dims.length) {
      // Past the planned stop point but not yet in the conflict area:
      // emergency brake.
      accel = -me.params().max_brake;
    }
    // Else: inside/at the conflict area already - committed, keep moving.
  }
  return accel;
}

void World::sense_hazards() {
  for (Vehicle& v : vehicles_) {
    if (v.params().parked || v.crashed() || v.finished(net_)) continue;
    for (const Vehicle& other : vehicles_) {
      if (other.id() == v.id() || other.params().parked) continue;
      if (other.finished(net_) || other.crashed()) continue;
      if (agent_visible_from(v.id(), other.id())) {
        v.learn_hazard(other.id(), time_, false);
      }
    }
    for (const Pedestrian& p : pedestrians_) {
      if (p.finished()) continue;
      if (agent_visible_from(v.id(), p.id())) {
        v.learn_hazard(p.id(), time_, false);
      }
    }
  }
}

void World::step() {
  materialize_pending_spawns();

  // Maneuver layer (off by default): advance each vehicle's lateral state
  // machine against the pre-step world, in storage order. A committed lane
  // change mutates that vehicle's route before later vehicles observe gaps —
  // sequential and deterministic, like the control loop below.
  if (cfg_.maneuver.enabled) {
    for (Vehicle& v : vehicles_) {
      if (v.params().parked || v.crashed() || v.finished(net_)) continue;
      maneuver_planner_.update(v, net_, vehicles_, signals_, time_);
    }
  }

  sense_hazards();

  // Compute controls against the pre-step state, then integrate.
  std::vector<double> accels(vehicles_.size(), 0.0);
  for (std::size_t i = 0; i < vehicles_.size(); ++i) {
    Vehicle& v = vehicles_[i];
    if (v.params().parked || v.crashed() || v.finished(net_)) continue;
    accels[i] = control_vehicle(v);
  }
  for (std::size_t i = 0; i < vehicles_.size(); ++i) {
    Vehicle& v = vehicles_[i];
    if (v.finished(net_)) continue;
    v.advance(accels[i], cfg_.dt);
  }
  for (Pedestrian& p : pedestrians_) {
    if (!p.finished()) p.advance(cfg_.dt);
  }

  time_ += cfg_.dt;

  // Record speed history for delayed perception.
  for (const Vehicle& v : vehicles_) {
    auto& hist = speed_hist_[v.id()];
    hist.emplace_back(time_, v.speed());
    while (!hist.empty() && hist.front().first < time_ - 3.0) {
      hist.pop_front();
    }
  }

  detect_collisions();
  update_pair_distances();
}

void World::detect_collisions() {
  for (std::size_t i = 0; i < vehicles_.size(); ++i) {
    Vehicle& a = vehicles_[i];
    if (a.finished(net_)) continue;
    const Obb box_a = a.obb(net_);
    for (std::size_t j = i + 1; j < vehicles_.size(); ++j) {
      Vehicle& b = vehicles_[j];
      if (b.finished(net_)) continue;
      if (a.crashed() && b.crashed()) continue;
      if (box_a.overlaps(b.obb(net_))) {
        collisions_.push_back(
            {a.id(), b.id(), time_, (a.position(net_) + b.position(net_)) * 0.5});
        a.mark_crashed();
        b.mark_crashed();
      }
    }
    for (Pedestrian& p : pedestrians_) {
      if (p.finished()) continue;
      if (a.crashed()) continue;
      if (box_a.overlaps(p.obb())) {
        collisions_.push_back(
            {a.id(), p.id(), time_, (a.position(net_) + p.position()) * 0.5});
        a.mark_crashed();
      }
    }
  }
}

void World::update_pair_distances() {
  for (std::size_t i = 0; i < vehicles_.size(); ++i) {
    const Vehicle& a = vehicles_[i];
    if (a.finished(net_) || a.params().parked) continue;
    const Obb box_a = a.obb(net_);
    for (std::size_t j = i + 1; j < vehicles_.size(); ++j) {
      const Vehicle& b = vehicles_[j];
      if (b.finished(net_) || b.params().parked) continue;
      const double d = box_a.distance_to(b.obb(net_));
      auto& slot = pair_min_dist_
                       .try_emplace(pair_key(a.id(), b.id()),
                                    std::numeric_limits<double>::infinity())
                       .first->second;
      slot = std::min(slot, d);
      global_min_distance_ = std::min(global_min_distance_, d);
    }
    for (const Pedestrian& p : pedestrians_) {
      if (p.finished()) continue;
      const double d = box_a.distance_to(p.obb());
      auto& slot = pair_min_dist_
                       .try_emplace(pair_key(a.id(), p.id()),
                                    std::numeric_limits<double>::infinity())
                       .first->second;
      slot = std::min(slot, d);
      global_min_ped_distance_ = std::min(global_min_ped_distance_, d);
    }
  }
}

std::vector<LidarTarget> World::lidar_targets(AgentId exclude) const {
  std::vector<LidarTarget> out;
  out.reserve(vehicles_.size() + pedestrians_.size() + statics_.size());
  for (const Vehicle& v : vehicles_) {
    if (v.id() == exclude || v.finished(net_)) continue;
    out.push_back({v.obb(net_), 0.0, v.params().dims.height, v.id()});
  }
  for (const Pedestrian& p : pedestrians_) {
    if (p.id() == exclude || p.finished()) continue;
    out.push_back({p.obb(), 0.0, p.params().dims.height, p.id()});
  }
  AgentId static_id = -2;
  for (const StaticObstacle& s : statics_) {
    out.push_back({s.footprint, 0.0, s.height, static_id--});
  }
  return out;
}

LidarScan World::scan_from(AgentId vehicle_id) const {
  const Vehicle* v = find_vehicle(vehicle_id);
  if (v == nullptr) return {};
  const auto targets = lidar_targets(vehicle_id);
  // Per-scan RNG seeded from (world seed, vehicle, tick): the noise stream
  // is a pure function of who scans when, never of which other vehicles
  // scanned first — scans can run concurrently and stay deterministic.
  const auto tick = static_cast<std::uint64_t>(std::llround(time_ / cfg_.dt));
  std::mt19937_64 scan_rng = core::seeded_rng(core::seed_mix(
      cfg_.seed, static_cast<std::uint64_t>(vehicle_id), tick));
  return lidar_.scan(v->sensor_pose(net_, cfg_.sensor_height), targets,
                     scan_rng);
}

bool World::agent_visible_from(AgentId viewer, AgentId target) const {
  const Vehicle* ve = find_vehicle(viewer);
  if (ve == nullptr) return false;
  const Vec2 eye = ve->position(net_);

  Vec2 tpos;
  if (const Vehicle* tv = find_vehicle(target)) {
    if (tv->finished(net_)) return false;
    tpos = tv->position(net_);
  } else if (const Pedestrian* tp = find_pedestrian(target)) {
    if (tp->finished()) return false;
    tpos = tp->position();
  } else {
    return false;
  }

  if (distance(eye, tpos) > cfg_.sensor_range) return false;

  std::vector<Obb> occluders;
  occluders.reserve(vehicles_.size() + statics_.size());
  for (const Vehicle& v : vehicles_) {
    if (v.id() == viewer || v.id() == target || v.finished(net_)) continue;
    occluders.push_back(v.obb(net_));
  }
  for (const StaticObstacle& s : statics_) occluders.push_back(s.footprint);
  // Pedestrians are too small to occlude vehicles meaningfully.
  return line_of_sight(eye, tpos, occluders);
}

void World::notify_vehicle(AgentId vehicle, AgentId hazard) {
  if (Vehicle* v = find_vehicle(vehicle)) {
    v->learn_hazard(hazard, time_, true);
  }
}

bool World::agent_crashed(AgentId id) const {
  for (const CollisionEvent& c : collisions_) {
    if (c.a == id || c.b == id) return true;
  }
  return false;
}

double World::min_pair_distance(AgentId a, AgentId b) const {
  const auto it = pair_min_dist_.find(pair_key(a, b));
  return it == pair_min_dist_.end() ? std::numeric_limits<double>::infinity()
                                    : it->second;
}

std::vector<AgentSnapshot> World::snapshot() const {
  std::vector<AgentSnapshot> out;
  out.reserve(vehicles_.size() + pedestrians_.size());
  for (const Vehicle& v : vehicles_) {
    if (v.finished(net_)) continue;
    out.push_back({v.id(), v.params().kind, v.position(net_), v.heading(net_),
                   v.velocity(net_), v.params().dims, v.params().connected,
                   v.params().parked});
  }
  for (const Pedestrian& p : pedestrians_) {
    if (p.finished()) continue;
    out.push_back({p.id(), AgentKind::kPedestrian, p.position(), p.heading(),
                   p.velocity(), p.params().dims, false, false});
  }
  return out;
}

bool World::passed_intersection(AgentId vehicle_id) const {
  const Vehicle* v = find_vehicle(vehicle_id);
  if (v == nullptr) return false;
  return v->s() >= net_.route(v->route_id()).box_exit_s;
}

}  // namespace erpd::sim
