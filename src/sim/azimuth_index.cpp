#include "sim/azimuth_index.hpp"

#include <cmath>

#include "core/check.hpp"
#include "geom/angle.hpp"

namespace erpd::sim {

namespace {

/// Euclidean modulo into [0, n).
inline std::int64_t wrap_bin(std::int64_t ia, std::int64_t n) {
  const std::int64_t m = ia % n;
  return m < 0 ? m + n : m;
}

}  // namespace

void AzimuthIndex::build(std::span<const BinSpan> spans, int n_az,
                         double az_step) {
  ERPD_REQUIRE(n_az >= 1, "AzimuthIndex: n_az must be >= 1, got ", n_az);
  ERPD_REQUIRE(az_step > 0.0, "AzimuthIndex: az_step must be > 0, got ",
               az_step);
  const std::int64_t n = n_az;

  // Pass 1: resolve each span to an inclusive unwrapped bin range and count
  // entries per bin. Bin ia sits at azimuth -pi + ia * az_step, so azimuth a
  // maps to bin index (a + pi) / az_step; the floor/floor+1 pair below plus
  // the +-1 padding covers every integer in the real-valued range even under
  // worst-case rounding of the division.
  ranges_.clear();
  ranges_.reserve(spans.size());
  starts_.assign(static_cast<std::size_t>(n) + 1, 0);
  std::uint32_t* counts = starts_.data() + 1;  // counts[ia] = starts_[ia + 1]
  for (const BinSpan& s : spans) {
    std::int64_t lo;
    std::int64_t hi;
    if (s.half_width >= geom::kPi) {
      lo = 0;
      hi = n - 1;
    } else {
      const double lo_f = (s.center - s.half_width + geom::kPi) / az_step;
      const double hi_f = (s.center + s.half_width + geom::kPi) / az_step;
      lo = static_cast<std::int64_t>(std::floor(lo_f)) - 1;
      hi = static_cast<std::int64_t>(std::floor(hi_f)) + 1;
      if (hi - lo + 1 >= n) {  // padded span wraps onto itself: all bins
        lo = 0;
        hi = n - 1;
      }
    }
    ranges_.push_back({lo, hi});
    for (std::int64_t ia = lo; ia <= hi; ++ia) ++counts[wrap_bin(ia, n)];
  }

  // Prefix-sum the counts into CSR starts.
  for (std::size_t ia = 1; ia < starts_.size(); ++ia) {
    starts_[ia] += starts_[ia - 1];
  }

  // Pass 2: fill. Spans are walked in ascending candidate order, so each
  // bin's list comes out ascending — the brute-force visitation order.
  entries_.resize(starts_.back());
  cursor_.assign(starts_.begin(), starts_.end() - 1);
  for (std::size_t i = 0; i < ranges_.size(); ++i) {
    const auto [lo, hi] = ranges_[i];
    for (std::int64_t ia = lo; ia <= hi; ++ia) {
      entries_[cursor_[wrap_bin(ia, n)]++] = static_cast<std::uint32_t>(i);
    }
  }
}

}  // namespace erpd::sim
