#include "sim/lidar.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "core/check.hpp"
#include "core/detlint.hpp"
#include "core/rng.hpp"
#include "core/thread_pool.hpp"
#include "geom/angle.hpp"
#include "sim/azimuth_index.hpp"

namespace erpd::sim {

using geom::Vec2;
using geom::Vec3;

LidarSensor::LidarSensor(LidarConfig cfg) : cfg_(cfg) {
  ERPD_REQUIRE(cfg_.channels >= 1, "LidarSensor: channels must be >= 1, got ",
               cfg_.channels);
  ERPD_REQUIRE(cfg_.azimuth_step_deg > 0.0,
               "LidarSensor: azimuth_step_deg must be > 0, got ",
               cfg_.azimuth_step_deg);
  ERPD_REQUIRE(cfg_.max_range > 0.0, "LidarSensor: max_range must be > 0, got ",
               cfg_.max_range);
  elevations_.reserve(static_cast<std::size_t>(cfg_.channels));
  const double lo = geom::deg_to_rad(cfg_.vertical_fov_min_deg);
  const double hi = geom::deg_to_rad(cfg_.vertical_fov_max_deg);
  for (int c = 0; c < cfg_.channels; ++c) {
    const double t =
        cfg_.channels == 1 ? 0.5 : static_cast<double>(c) / (cfg_.channels - 1);
    elevations_.push_back(lo + t * (hi - lo));
  }
  tan_elevations_.reserve(elevations_.size());
  for (const double elev : elevations_) {
    tan_elevations_.push_back(std::tan(elev));
  }
  {
    const int n_az = cfg_.azimuth_count();
    const double az_step = geom::kTwoPi / n_az;
    azimuth_world_.reserve(static_cast<std::size_t>(n_az));
    azimuth_dirs_.reserve(static_cast<std::size_t>(n_az));
    for (std::size_t ia = 0; ia < static_cast<std::size_t>(n_az); ++ia) {
      const double az_world = -geom::kPi + static_cast<double>(ia) * az_step;
      azimuth_world_.push_back(az_world);
      azimuth_dirs_.push_back(geom::Vec2::from_heading(az_world));
    }
  }
  // Reference-path escape hatch (see set_brute_force). Reading configuration
  // from the environment here mirrors ERPD_THREADS: it selects between two
  // bit-identical implementations, never different outputs.
  if (const char* env = std::getenv("ERPD_LIDAR_BRUTE_FORCE")) {
    brute_force_ = env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
  }
}

namespace {

/// Azimuth interval (possibly wrapping) that a target subtends from the eye.
struct AngularSpan {
  double center{0.0};
  double half_width{0.0};
  bool covers(double azimuth) const {
    return geom::angle_dist(azimuth, center) <= half_width;
  }
};

AngularSpan subtended(Vec2 eye, const geom::Obb& box) {
  const Vec2 d = box.center() - eye;
  const double dist = d.norm();
  const double radius =
      0.5 * std::hypot(box.length(), box.width());  // circumscribed circle
  AngularSpan span;
  span.center = d.heading();
  if (dist <= radius) {
    span.half_width = geom::kPi;  // eye inside the circumcircle: all azimuths
  } else {
    span.half_width = std::asin(std::min(1.0, radius / dist)) + 1e-3;
  }
  return span;
}

/// Tight bin span for the acceleration index: the cone of directions from
/// the eye that can touch the box is exactly the arc spanned by its corner
/// directions (the box is convex and the eye outside it), which for a long
/// wall seen side-on is far narrower than its circumcircle span. Padded by
/// 1e-3 rad here plus one bin on each side inside AzimuthIndex — orders of
/// magnitude beyond the FP slop of the intersection kernel — so the bins a
/// candidate lands in are a strict superset of the bins it can be hit from.
BinSpan corner_bin_span(Vec2 eye, const geom::Obb& box, bool eye_inside) {
  BinSpan out;
  if (eye_inside) {
    out.half_width = geom::kPi;  // hit at t = 0 from every azimuth
    return out;
  }
  out.center = (box.center() - eye).heading();
  double hw = 0.0;
  for (const Vec2& corner : box.corners()) {
    hw = std::max(hw,
                  std::abs(geom::wrap_angle((corner - eye).heading() -
                                            out.center)));
  }
  out.half_width = hw + 1e-3;
  return out;
}

/// Azimuths per parallel chunk. Fixed (never derived from the worker count)
/// so the chunk decomposition — and with it the merged output — is identical
/// for every ERPD_THREADS setting.
constexpr std::size_t kAzimuthGrain = 64;

/// Sort a small vector under a strict TOTAL order (every pair of distinct
/// elements compares unequal). The sorted permutation is then unique, so the
/// algorithm cannot affect the result — insertion sort just skips
/// std::sort's dispatch overhead at typical per-azimuth hit counts (a
/// handful of entries).
template <typename T, typename Less>
void sort_total_order(std::vector<T>& v, Less less) {
  if (v.size() > 16) {
    std::sort(v.begin(), v.end(), less);
    return;
  }
  for (std::size_t i = 1; i < v.size(); ++i) {
    T tmp = v[i];
    std::size_t j = i;
    for (; j > 0 && less(tmp, v[j - 1]); --j) v[j] = v[j - 1];
    v[j] = tmp;
  }
}

}  // namespace

LidarScan LidarSensor::scan(const geom::Pose& pose,
                            std::span<const LidarTarget> targets,
                            std::mt19937_64& rng) const {
  LidarScan out;

  const Vec2 eye = pose.position.xy();
  const double sensor_z = pose.position.z;
  const int n_az = cfg_.azimuth_count();
  const double az_step = geom::kTwoPi / n_az;

  // Range noise is derived per azimuth from one base draw, so each azimuth's
  // stream is independent of the order azimuths are processed in — the
  // parallel and serial schedules produce bit-identical clouds. With noise
  // disabled the caller's RNG is left untouched (as before).
  const bool noisy = cfg_.noise_sigma > 0.0;
  const std::uint64_t noise_base = noisy ? rng() : 0;

  // Angular culling: precompute each target's subtended span (shared,
  // read-only across chunks).
  struct Candidate {
    const LidarTarget* target;
    AngularSpan span;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(targets.size());
  for (const LidarTarget& t : targets) {
    const double d = (t.footprint.center() - eye).norm();
    if (d - t.footprint.max_extent() > cfg_.max_range) continue;
    candidates.push_back({&t, subtended(eye, t.footprint)});
  }

  struct Hit {
    double dist;
    const LidarTarget* target;
    std::uint32_t cand;  // candidate index: deterministic equal-range order
  };
  // Nearest first; equal distances (e.g. coincident footprint edges) break
  // ties on candidate index so the struck target never depends on sort
  // implementation details.
  const auto hit_less = [](const Hit& a, const Hit& b) {
    if (a.dist != b.dist) return a.dist < b.dist;
    return a.cand < b.cand;
  };

  // Per-chunk accumulation, merged in chunk (= azimuth) order afterwards.
  struct ChunkOut {
    std::vector<Vec3> points;
    std::unordered_map<AgentId, std::size_t, core::DetHash<AgentId>>
        points_per_agent;
    std::size_t ground_points{0};
    std::size_t static_points{0};
  };
  const std::size_t n_chunks =
      core::chunk_count(static_cast<std::size_t>(n_az), kAzimuthGrain);
  std::vector<ChunkOut> chunks(n_chunks);

  // World->sensor frame conversion (the uplink operates on sensor-frame
  // clouds plus the pose, as in the paper). The accelerated path applies it
  // at emission time — same transform_point on the same world-frame values
  // the reference path stores, so fusing it into the emit saves a whole
  // extra pass over the cloud without moving a bit.
  const geom::Mat4 t_wl = geom::Mat4::from_pose(pose).rigid_inverse();

  if (brute_force_) {
    // Reference path: the original O(n_az x n_candidates) loop, kept as an
    // executable specification of the sensor. Everything below (candidate
    // probing, per-elevation tan, noise draws through the <random>
    // distribution) is deliberately naive; the accelerated path must match
    // it byte for byte (test_lidar_equivalence).
    core::parallel_chunks(
        static_cast<std::size_t>(n_az), kAzimuthGrain,
        [&](std::size_t az_begin, std::size_t az_end, std::size_t ci) {
          ChunkOut& co = chunks[ci];
          co.points.reserve((az_end - az_begin) *
                            static_cast<std::size_t>(cfg_.channels) / 4);
          std::vector<Hit> hits;  // reused across this chunk's azimuths

          for (std::size_t ia = az_begin; ia < az_end; ++ia) {
            const double az_world =
                -geom::kPi + static_cast<double>(ia) * az_step;
            const Vec2 dir = Vec2::from_heading(az_world);
            const geom::Segment ray{eye, eye + dir * cfg_.max_range};

            core::SplitMix64 az_rng(core::seed_mix(noise_base, ia));
            std::normal_distribution<double> noise(0.0, cfg_.noise_sigma);

            // All obstructions along this azimuth, nearest first.
            hits.clear();
            for (std::size_t j = 0; j < candidates.size(); ++j) {
              const Candidate& c = candidates[j];
              if (!c.span.covers(az_world)) continue;
              const double t = c.target->footprint.ray_hit(ray);
              if (t >= 0.0) {
                hits.push_back({t * cfg_.max_range, c.target,
                                static_cast<std::uint32_t>(j)});
              }
            }
            std::sort(hits.begin(), hits.end(), hit_less);

            for (const double elev : elevations_) {
              const double tan_e = std::tan(elev);
              // First prism whose vertical extent intersects the beam.
              const LidarTarget* struck = nullptr;
              double struck_dist = 0.0;
              for (const Hit& h : hits) {
                const double z = sensor_z + h.dist * tan_e;
                if (z >= h.target->base_z &&
                    z <= h.target->base_z + h.target->height) {
                  struck = h.target;
                  struck_dist = h.dist;
                  break;
                }
              }
              if (struck != nullptr) {
                const double d = struck_dist + (noisy ? noise(az_rng) : 0.0);
                const Vec2 pxy = eye + dir * d;
                co.points.push_back(Vec3{pxy, sensor_z + struck_dist * tan_e});
                if (struck->id >= 0) {
                  ++co.points_per_agent[struck->id];
                } else {
                  ++co.static_points;
                }
                continue;
              }
              // No prism in the way; downward beams reach the ground.
              if (tan_e < 0.0) {
                const double ground_d = -sensor_z / tan_e;
                if (ground_d <= cfg_.max_range) {
                  const double d = ground_d + (noisy ? noise(az_rng) : 0.0);
                  const Vec2 pxy = eye + dir * d;
                  co.points.push_back(Vec3{pxy, 0.0});
                  ++co.ground_points;
                }
              }
            }
          }
        });
  } else {
    // Accelerated path. Per-scan precomputation (all shared and read-only
    // across chunks):
    //  - SoA edge/eye-inside tables: corners() and contains(eye) hoisted
    //    out of the per-ray loop (the ray origin never changes in a scan);
    //  - azimuth-interval index over corner-tight spans: each ray probes a
    //    short per-bin candidate list instead of every candidate;
    //  - ground-return range per channel: -sensor_z / tan_e is a per-scan
    //    constant the old loop recomputed per azimuth.
    geom::ObbRaySoa soa;
    std::vector<BinSpan> bin_spans;
    bin_spans.reserve(candidates.size());
    for (const Candidate& c : candidates) {
      soa.add(c.target->footprint, eye);
      bin_spans.push_back(corner_bin_span(eye, c.target->footprint,
                                          soa.eye_inside(soa.size() - 1)));
    }
    AzimuthIndex index;
    index.build(bin_spans, n_az, az_step);

    const std::size_t n_ch = elevations_.size();
    // The per-channel beam height z(c) = sensor_z + dist * tan(elev_c) is
    // non-decreasing in c whenever the tan table is (dist >= 0), which lets
    // pass 1 below binary-search each hit's blocked-channel range instead of
    // re-testing every channel against every hit. Checked on the actual FP
    // values (false for NaNs), with the linear scan kept as fallback.
    bool tan_monotone = true;
    for (std::size_t c = 1; c < n_ch; ++c) {
      if (!(tan_elevations_[c] >= tan_elevations_[c - 1])) {
        tan_monotone = false;
        break;
      }
    }
    std::vector<double> ground_dist(n_ch, 0.0);
    std::vector<std::uint8_t> ground_ok(n_ch, 0);
    std::vector<std::uint32_t> ground_channels;  // ascending c, ground-capable
    for (std::size_t c = 0; c < n_ch; ++c) {
      const double tan_e = tan_elevations_[c];
      if (tan_e < 0.0) {
        const double ground_d = -sensor_z / tan_e;
        ground_dist[c] = ground_d;
        if (ground_d <= cfg_.max_range) {
          ground_ok[c] = 1;
          ground_channels.push_back(static_cast<std::uint32_t>(c));
        }
      }
    }

    // When the chunk schedule is provably serial-in-order — a single global
    // worker lane (the serial fallback runs chunks in ascending order on the
    // calling thread) or a single chunk — emit straight into the output
    // cloud: the merge below would concatenate the chunk buffers in exactly
    // that order anyway, so skipping them changes no bytes and saves a full
    // copy of the cloud plus the per-chunk allocations.
    std::vector<Vec3>* const direct =
        (core::thread_count() == 1 || n_chunks == 1) ? &out.cloud.points()
                                                     : nullptr;
    if (direct != nullptr) {
      direct->reserve(static_cast<std::size_t>(n_az) * n_ch);
    }

    core::parallel_chunks(
        static_cast<std::size_t>(n_az), kAzimuthGrain,
        [&](std::size_t az_begin, std::size_t az_end, std::size_t ci) {
          ChunkOut& co = chunks[ci];
          // Full-size reserve: a chunk can emit up to one point per channel
          // per azimuth, and an undersized buffer pays reallocation + copy
          // mid-chunk (measurably ~9 ns/point on the bench scene).
          std::vector<Vec3>& pts = direct != nullptr ? *direct : co.points;
          if (direct == nullptr) {
            co.points.reserve((az_end - az_begin) * n_ch);
          }
          std::vector<Hit> hits;  // reused across this chunk's azimuths
          // Per-candidate tallies; folded into the per-agent map once per
          // chunk instead of one hash probe per struck point.
          std::vector<std::size_t> cand_points(candidates.size(), 0);
          // Per-azimuth scratch: which hit (index into `hits`) blocks each
          // channel, and the azimuth's noise draws generated in one batch.
          std::vector<std::int32_t> struck_idx(n_ch, -1);
          std::vector<double> noise_buf(n_ch, 0.0);

          for (std::size_t ia = az_begin; ia < az_end; ++ia) {
            const double az_world = azimuth_world_[ia];
            const Vec2 dir = azimuth_dirs_[ia];

            core::SplitMix64 az_rng(core::seed_mix(noise_base, ia));
            core::NormalSampler noise(0.0, cfg_.noise_sigma);

            // All obstructions along this azimuth, nearest first. The bin
            // holds a superset of the candidates hittable at this azimuth,
            // in ascending candidate order; the exact covers() re-check
            // keeps the probed set — and with it the hit list — identical
            // to the brute-force path's.
            hits.clear();
            const std::span<const std::uint32_t> bin = index.bin(ia);
            if (!bin.empty()) {
              const geom::Segment ray{eye, eye + dir * cfg_.max_range};
              for (const std::uint32_t j : bin) {
                const Candidate& c = candidates[j];
                if (!c.span.covers(az_world)) continue;
                const double t = soa.ray_hit(j, ray);
                if (t >= 0.0) {
                  hits.push_back({t * cfg_.max_range, c.target, j});
                }
              }
              // (dist, cand) is a total order — cand is unique per entry —
              // so any comparison sort yields the same sequence.
              if (hits.size() > 1) sort_total_order(hits, hit_less);
            }

            if (hits.empty()) {
              // Nothing blocks any beam at this azimuth: only the
              // ground-capable channels emit, in the same ascending-channel
              // order (and hence the same noise-draw order) as the general
              // loop below.
              const std::size_t m = ground_channels.size();
              if (noisy && m > 0) noise.fill(az_rng, noise_buf.data(), m);
              std::size_t k = 0;
              for (const std::uint32_t c : ground_channels) {
                const double nz = noisy ? noise_buf[k++] : 0.0;
                const double d = ground_dist[c] + nz;
                const Vec2 pxy = eye + dir * d;
                pts.push_back(t_wl.transform_point(Vec3{pxy, 0.0}));
              }
              co.ground_points += m;
              continue;
            }

            // Pass 1: resolve which hit (if any) blocks each channel and
            // count the azimuth's emissions, so the noise draws can be
            // generated in one batch. Channels consume draws in ascending
            // order exactly as the reference path's interleaved loop does.
            std::size_t m = 0;
            if (tan_monotone) {
              // z(c) is non-decreasing, so the channels a hit blocks —
              // { c : z(c) >= base  &&  z(c) <= base + height } — form a
              // contiguous range; binary-search its endpoints with the
              // EXACT per-channel predicate arithmetic, then claim
              // unclaimed channels. Nearest hit first (hits is sorted), so
              // first-claim == "first hit in sorted order that covers c".
              std::fill(struck_idx.begin(), struck_idx.end(),
                        std::int32_t{-1});
              for (std::size_t k2 = 0; k2 < hits.size(); ++k2) {
                const Hit& h = hits[k2];
                const double base = h.target->base_z;
                const double top = h.target->base_z + h.target->height;
                std::size_t lo = 0;
                std::size_t hi = n_ch;
                while (lo < hi) {  // first c with z(c) >= base
                  const std::size_t mid = (lo + hi) / 2;
                  const double z = sensor_z + h.dist * tan_elevations_[mid];
                  if (z >= base) {
                    hi = mid;
                  } else {
                    lo = mid + 1;
                  }
                }
                const std::size_t clo = lo;
                hi = n_ch;
                while (lo < hi) {  // first c with z(c) > top
                  const std::size_t mid = (lo + hi) / 2;
                  const double z = sensor_z + h.dist * tan_elevations_[mid];
                  if (z <= top) {
                    lo = mid + 1;
                  } else {
                    hi = mid;
                  }
                }
                for (std::size_t c = clo; c < lo; ++c) {
                  if (struck_idx[c] < 0) {
                    struck_idx[c] = static_cast<std::int32_t>(k2);
                  }
                }
              }
              for (std::size_t c = 0; c < n_ch; ++c) {
                if (struck_idx[c] >= 0 || ground_ok[c] != 0) ++m;
              }
            } else {
              for (std::size_t c = 0; c < n_ch; ++c) {
                const double tan_e = tan_elevations_[c];
                // First prism whose vertical extent intersects the beam.
                std::int32_t si = -1;
                for (const Hit& h : hits) {
                  const double z = sensor_z + h.dist * tan_e;
                  if (z >= h.target->base_z &&
                      z <= h.target->base_z + h.target->height) {
                    si = static_cast<std::int32_t>(&h - hits.data());
                    break;
                  }
                }
                struck_idx[c] = si;
                if (si >= 0 || ground_ok[c] != 0) ++m;
              }
            }
            if (noisy && m > 0) noise.fill(az_rng, noise_buf.data(), m);

            // Pass 2: emit.
            std::size_t k = 0;
            for (std::size_t c = 0; c < n_ch; ++c) {
              const std::int32_t si = struck_idx[c];
              if (si >= 0) {
                const Hit& h = hits[static_cast<std::size_t>(si)];
                const double nz = noisy ? noise_buf[k++] : 0.0;
                const double d = h.dist + nz;
                const Vec2 pxy = eye + dir * d;
                pts.push_back(t_wl.transform_point(
                    Vec3{pxy, sensor_z + h.dist * tan_elevations_[c]}));
                ++cand_points[h.cand];
                continue;
              }
              // No prism in the way; downward beams reach the ground.
              if (ground_ok[c] != 0) {
                const double nz = noisy ? noise_buf[k++] : 0.0;
                const double d = ground_dist[c] + nz;
                const Vec2 pxy = eye + dir * d;
                pts.push_back(t_wl.transform_point(Vec3{pxy, 0.0}));
                ++co.ground_points;
              }
            }
          }

          // Fold candidate tallies into the chunk's per-agent map in
          // ascending candidate order (a deterministic fold; += into the
          // same id from several candidates commutes anyway).
          for (std::size_t j = 0; j < cand_points.size(); ++j) {
            if (cand_points[j] == 0) continue;
            if (candidates[j].target->id >= 0) {
              co.points_per_agent[candidates[j].target->id] += cand_points[j];
            } else {
              co.static_points += cand_points[j];
            }
          }
        });
  }

  // Deterministic reduction: chunk outputs are visited in chunk (= ascending
  // azimuth) order, so the concatenated cloud is byte-identical to the
  // serial scan for any worker count. The accelerated path already emitted
  // sensor-frame points (the conversion is fused into the emit above), so
  // its merge is a raw concatenation; the reference path stores world-frame
  // chunks and converts them here with the same transform_point.
  std::size_t total = 0;
  for (const ChunkOut& co : chunks) total += co.points.size();
  out.cloud.reserve(total);
  for (const ChunkOut& co : chunks) {
    if (brute_force_) {
      for (const Vec3& p : co.points) {
        out.cloud.push_back(t_wl.transform_point(p));
      }
    } else {
      out.cloud.points().insert(out.cloud.points().end(), co.points.begin(),
                                co.points.end());
    }
    // Within one chunk the per-agent tallies are visited in hash order,
    // which is fine: the fold is a per-key += of unsigned counts, and
    // addition into distinct map slots commutes — every visitation order
    // yields the same final map. The chunk loop around it is ordered, so
    // the only unordered step is this provably commutative one.
    ERPD_ORDER_INSENSITIVE(
        "per-key += of unsigned counts into distinct slots commutes");
    for (const auto& [id, n] : co.points_per_agent) {
      out.points_per_agent[id] += n;
    }
    out.ground_points += co.ground_points;
    out.static_points += co.static_points;
  }
  return out;
}

bool line_of_sight(Vec2 eye, Vec2 target_point,
                   std::span<const geom::Obb> occluders) {
  const geom::Segment seg{eye, target_point};
  for (const geom::Obb& box : occluders) {
    const double t = box.ray_hit(seg);
    if (t >= 0.0 && t < 1.0) return false;
  }
  return true;
}

}  // namespace erpd::sim
