#include "sim/lidar.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"
#include "core/detlint.hpp"
#include "core/rng.hpp"
#include "core/thread_pool.hpp"
#include "geom/angle.hpp"

namespace erpd::sim {

using geom::Vec2;
using geom::Vec3;

LidarSensor::LidarSensor(LidarConfig cfg) : cfg_(cfg) {
  ERPD_REQUIRE(cfg_.channels >= 1, "LidarSensor: channels must be >= 1, got ",
               cfg_.channels);
  ERPD_REQUIRE(cfg_.azimuth_step_deg > 0.0,
               "LidarSensor: azimuth_step_deg must be > 0, got ",
               cfg_.azimuth_step_deg);
  ERPD_REQUIRE(cfg_.max_range > 0.0, "LidarSensor: max_range must be > 0, got ",
               cfg_.max_range);
  elevations_.reserve(static_cast<std::size_t>(cfg_.channels));
  const double lo = geom::deg_to_rad(cfg_.vertical_fov_min_deg);
  const double hi = geom::deg_to_rad(cfg_.vertical_fov_max_deg);
  for (int c = 0; c < cfg_.channels; ++c) {
    const double t =
        cfg_.channels == 1 ? 0.5 : static_cast<double>(c) / (cfg_.channels - 1);
    elevations_.push_back(lo + t * (hi - lo));
  }
}

namespace {

/// Azimuth interval (possibly wrapping) that a target subtends from the eye.
struct AngularSpan {
  double center{0.0};
  double half_width{0.0};
  bool covers(double azimuth) const {
    return geom::angle_dist(azimuth, center) <= half_width;
  }
};

AngularSpan subtended(Vec2 eye, const geom::Obb& box) {
  const Vec2 d = box.center() - eye;
  const double dist = d.norm();
  const double radius =
      0.5 * std::hypot(box.length(), box.width());  // circumscribed circle
  AngularSpan span;
  span.center = d.heading();
  if (dist <= radius) {
    span.half_width = geom::kPi;  // eye inside the circumcircle: all azimuths
  } else {
    span.half_width = std::asin(std::min(1.0, radius / dist)) + 1e-3;
  }
  return span;
}

/// Azimuths per parallel chunk. Fixed (never derived from the worker count)
/// so the chunk decomposition — and with it the merged output — is identical
/// for every ERPD_THREADS setting.
constexpr std::size_t kAzimuthGrain = 64;

}  // namespace

LidarScan LidarSensor::scan(const geom::Pose& pose,
                            std::span<const LidarTarget> targets,
                            std::mt19937_64& rng) const {
  LidarScan out;

  const Vec2 eye = pose.position.xy();
  const double sensor_z = pose.position.z;
  const int n_az = cfg_.azimuth_count();
  const double az_step = geom::kTwoPi / n_az;

  // Range noise is derived per azimuth from one base draw, so each azimuth's
  // stream is independent of the order azimuths are processed in — the
  // parallel and serial schedules produce bit-identical clouds. With noise
  // disabled the caller's RNG is left untouched (as before).
  const bool noisy = cfg_.noise_sigma > 0.0;
  const std::uint64_t noise_base = noisy ? rng() : 0;

  // Angular culling: precompute each target's subtended span (shared,
  // read-only across chunks).
  struct Candidate {
    const LidarTarget* target;
    AngularSpan span;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(targets.size());
  for (const LidarTarget& t : targets) {
    const double d = (t.footprint.center() - eye).norm();
    if (d - t.footprint.max_extent() > cfg_.max_range) continue;
    candidates.push_back({&t, subtended(eye, t.footprint)});
  }

  struct Hit {
    double dist;
    const LidarTarget* target;
  };

  // Per-chunk accumulation, merged in chunk (= azimuth) order afterwards.
  struct ChunkOut {
    std::vector<Vec3> points;
    std::unordered_map<AgentId, std::size_t, core::DetHash<AgentId>>
        points_per_agent;
    std::size_t ground_points{0};
    std::size_t static_points{0};
  };
  const std::size_t n_chunks =
      core::chunk_count(static_cast<std::size_t>(n_az), kAzimuthGrain);
  std::vector<ChunkOut> chunks(n_chunks);

  core::parallel_chunks(
      static_cast<std::size_t>(n_az), kAzimuthGrain,
      [&](std::size_t az_begin, std::size_t az_end, std::size_t ci) {
        ChunkOut& co = chunks[ci];
        co.points.reserve((az_end - az_begin) *
                          static_cast<std::size_t>(cfg_.channels) / 4);
        std::vector<Hit> hits;  // reused across this chunk's azimuths

        for (std::size_t ia = az_begin; ia < az_end; ++ia) {
          const double az_world =
              -geom::kPi + static_cast<double>(ia) * az_step;
          const Vec2 dir = Vec2::from_heading(az_world);
          const geom::Segment ray{eye, eye + dir * cfg_.max_range};

          core::SplitMix64 az_rng(core::seed_mix(noise_base, ia));
          std::normal_distribution<double> noise(0.0, cfg_.noise_sigma);

          // All obstructions along this azimuth, nearest first.
          hits.clear();
          for (const Candidate& c : candidates) {
            if (!c.span.covers(az_world)) continue;
            const double t = c.target->footprint.ray_hit(ray);
            if (t >= 0.0) hits.push_back({t * cfg_.max_range, c.target});
          }
          std::sort(hits.begin(), hits.end(),
                    [](const Hit& a, const Hit& b) { return a.dist < b.dist; });

          for (const double elev : elevations_) {
            const double tan_e = std::tan(elev);
            // First prism whose vertical extent intersects the beam.
            const LidarTarget* struck = nullptr;
            double struck_dist = 0.0;
            for (const Hit& h : hits) {
              const double z = sensor_z + h.dist * tan_e;
              if (z >= h.target->base_z &&
                  z <= h.target->base_z + h.target->height) {
                struck = h.target;
                struck_dist = h.dist;
                break;
              }
            }
            if (struck != nullptr) {
              const double d = struck_dist + (noisy ? noise(az_rng) : 0.0);
              const Vec2 pxy = eye + dir * d;
              co.points.push_back(Vec3{pxy, sensor_z + struck_dist * tan_e});
              if (struck->id >= 0) {
                ++co.points_per_agent[struck->id];
              } else {
                ++co.static_points;
              }
              continue;
            }
            // No prism in the way; downward beams reach the ground.
            if (tan_e < 0.0) {
              const double ground_d = -sensor_z / tan_e;
              if (ground_d <= cfg_.max_range) {
                const double d = ground_d + (noisy ? noise(az_rng) : 0.0);
                const Vec2 pxy = eye + dir * d;
                co.points.push_back(Vec3{pxy, 0.0});
                ++co.ground_points;
              }
            }
          }
        }
      });

  // Deterministic reduction: chunk outputs are visited in chunk (= ascending
  // azimuth) order, so the concatenated cloud is byte-identical to the
  // serial scan for any worker count.
  std::size_t total = 0;
  for (const ChunkOut& co : chunks) total += co.points.size();
  out.cloud.reserve(total);
  for (const ChunkOut& co : chunks) {
    for (const Vec3& p : co.points) out.cloud.push_back(p);
    // Within one chunk the per-agent tallies are visited in hash order,
    // which is fine: the fold is a per-key += of unsigned counts, and
    // addition into distinct map slots commutes — every visitation order
    // yields the same final map. The chunk loop around it is ordered, so
    // the only unordered step is this provably commutative one.
    ERPD_ORDER_INSENSITIVE(
        "per-key += of unsigned counts into distinct slots commutes");
    for (const auto& [id, n] : co.points_per_agent) {
      out.points_per_agent[id] += n;
    }
    out.ground_points += co.ground_points;
    out.static_points += co.static_points;
  }

  // Convert world-frame returns into the sensor frame (the uplink operates
  // on sensor-frame clouds plus the pose, as in the paper).
  const geom::Mat4 t_wl = geom::Mat4::from_pose(pose).rigid_inverse();
  out.cloud.transform(t_wl);
  return out;
}

bool line_of_sight(Vec2 eye, Vec2 target_point,
                   std::span<const geom::Obb> occluders) {
  const geom::Segment seg{eye, target_point};
  for (const geom::Obb& box : occluders) {
    const double t = box.ray_hit(seg);
    if (t >= 0.0 && t < 1.0) return false;
  }
  return true;
}

}  // namespace erpd::sim
