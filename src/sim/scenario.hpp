#pragma once
// Scenario builders for the paper's evaluation (§IV):
//  - unprotected left turn  (Fig. 9a): ego turns left, view of the oncoming
//    straight vehicle blocked by a truck waiting in the opposite left lane;
//  - red-light violation    (Fig. 9b): ego crosses on green, a violator runs
//    the red light, both views blocked by trucks queued at the cross street;
//  - occluded pedestrian    (Fig. 8a demo): a pedestrian steps out from
//    behind a stopped truck into the ego lane.
//
// Conflict timing is auto-calibrated: the builders intersect the ego and
// threat routes and place both vehicles so they reach the crossing point
// simultaneously at the configured speed — which makes the accident
// inevitable without data sharing (the paper's "Single" rows are 0%).

#include <cstdint>
#include <vector>

#include "sim/world.hpp"

namespace erpd::sim {

struct ScenarioConfig {
  /// Cruise/desired speed of the scripted vehicles (paper sweeps 20-40 km/h).
  double speed_kmh{30.0};
  /// Fraction of vehicles that are connected (paper sweeps 0.2-0.5).
  double connected_fraction{0.3};
  /// Total vehicles spawned at the intersection (paper: 40).
  int total_vehicles{40};
  /// Pedestrians placed at crosswalk corners.
  int pedestrians{8};
  /// Seconds before the conflict point at which the scripted vehicles start.
  double time_to_conflict{7.0};
  /// Bumper gap of the scripted tailgating follower behind the ego (m).
  double follower_gap{9.0};
  std::uint64_t seed{1};
  WorldConfig world{};
  RoadConfig road{};

  /// Contract-checks every parameter range (ERPD_REQUIRE). Called by every
  /// scenario builder, so an out-of-range demand/timing parameter fails
  /// loudly at construction instead of producing a silently absurd world.
  void validate() const;
};

struct Scenario {
  World world;
  /// The instrumented (black) vehicle.
  AgentId ego{kInvalidAgent};
  /// The conflicting (red) vehicle or pedestrian.
  AgentId threat{kInvalidAgent};
  /// Scripted occluders (orange trucks).
  std::vector<AgentId> occluders;
  /// Vehicle following the ego in the same lane (for the follower-relevance
  /// ablation), if one was spawned.
  AgentId ego_follower{kInvalidAgent};
};

Scenario make_unprotected_left_turn(const ScenarioConfig& cfg);
Scenario make_red_light_violation(const ScenarioConfig& cfg);
Scenario make_occluded_pedestrian(const ScenarioConfig& cfg);

/// The urban backdrop shared by scripted and generated scenarios: the four
/// corner buildings that bound diagonal sight lines plus the street-front
/// walls flanking every arm. Deterministic (consumes no randomness).
void add_intersection_scenery(World& world);

/// A pedestrian at an intersection corner for clustering experiments:
/// position, heading (walking direction) and speed.
struct CrowdPedestrian {
  geom::Vec2 position{};
  double heading{0.0};
  double speed{1.35};
};

/// Generate `count` pedestrians in clumps at the four crosswalk corners,
/// each walking along one of the two crosswalks adjacent to its corner.
/// This is the workload for the Fig. 4 clustering experiment.
std::vector<CrowdPedestrian> generate_crosswalk_crowd(const RoadNetwork& net,
                                                      int count,
                                                      std::mt19937_64& rng);

}  // namespace erpd::sim
