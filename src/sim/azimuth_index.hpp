#pragma once
// Azimuth-interval acceleration index for the ray-cast LiDAR (DESIGN.md §14).
//
// The scan loop asks, per azimuth, "which candidates could this ray hit?".
// Probing every candidate's angular span per ray is O(n_az x n_candidates);
// this index buckets each candidate's span into the scan's azimuth bins once
// per scan (flat CSR layout), so each ray walks a short per-bin list instead.
//
// Binning is deliberately conservative (a superset): integer bin ranges are
// padded by one bin on each side, and callers re-check the exact span (and
// the ray cast itself rejects geometric misses), so a candidate appearing in
// a bin it cannot be hit from never changes the output — it only costs time.
// Determinism: bins are filled by walking candidates in ascending index
// order, so every per-bin list is ascending — walking a bin visits
// candidates in exactly the order the brute-force scan loop does.

#include <cstdint>
#include <span>
#include <vector>

namespace erpd::sim {

/// Angular interval a candidate occupies, for binning. `half_width >= pi`
/// places the candidate in every bin (eye inside the footprint, or spans
/// too wide to bound).
struct BinSpan {
  double center{0.0};
  double half_width{0.0};
};

class AzimuthIndex {
 public:
  /// Build bin -> candidate-index lists for `n_az` uniform bins, bin `ia`
  /// at azimuth -pi + ia * az_step (the scan's ray headings). Reuses
  /// internal storage across builds.
  void build(std::span<const BinSpan> spans, int n_az, double az_step);

  /// Candidate indices whose (padded) span covers bin `ia`, ascending.
  std::span<const std::uint32_t> bin(std::size_t ia) const {
    return {entries_.data() + starts_[ia],
            entries_.data() + starts_[ia + 1]};
  }

  std::size_t bin_count() const {
    return starts_.empty() ? 0 : starts_.size() - 1;
  }

 private:
  /// CSR: bin ia's candidates are entries_[starts_[ia] .. starts_[ia + 1]).
  std::vector<std::uint32_t> starts_;
  std::vector<std::uint32_t> entries_;
  /// Scratch: per-span inclusive unwrapped bin range, kept between the
  /// counting and fill passes.
  std::vector<std::pair<std::int64_t, std::int64_t>> ranges_;
  std::vector<std::uint32_t> cursor_;
};

}  // namespace erpd::sim
