#pragma once
// Seeded scenario generator (ROADMAP item 4, DESIGN.md §15).
//
// generate_scenario(cfg, seed) is a pure function of (GenConfig, u64 seed):
// it samples traffic demand, spawn times/routes, signal timing, occluder
// placement and pedestrian crowds into a ScenarioSpec — a plain-data
// description that serializes to a small line-oriented text format. Any
// interesting seed therefore becomes a committed replay file under
// tests/scenarios/, and the search harness (tools/scenario_search) can
// sweep seeds, minimize failures and emit regression anchors.
//
// The split matters: generation (randomized, seed-driven) and construction
// (ScenarioSpec -> World, fully deterministic) are separate stages, so a
// minimizer can edit the spec — drop spawns, remove pedestrians — without
// re-rolling the dice for the survivors.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/maneuver.hpp"
#include "sim/scenario.hpp"
#include "sim/world.hpp"

namespace erpd::sim {

/// The parameter space the generator samples from. validate() contract-
/// checks every range (ERPD_REQUIRE), so an out-of-range demand or timing
/// parameter fails loudly instead of generating an absurd world.
struct GenConfig {
  int min_vehicles{6};
  int max_vehicles{22};
  double min_speed_kmh{20.0};
  double max_speed_kmh{45.0};
  double min_connected{0.2};
  double max_connected{0.8};
  int max_pedestrians{8};
  int max_occluders{3};
  /// Deferred spawns land uniformly in (0, max_spawn_time]; roughly half of
  /// the demand spawns at t=0 as standing/flowing traffic.
  double max_spawn_time{6.0};
  /// Fraction of eligible spawns that carry a lane-change directive.
  double lane_change_fraction{0.35};
  /// Simulated duration a scenario is meant to run (seconds).
  double duration{14.0};
  /// Signal timing ranges (seconds).
  double min_green{10.0};
  double max_green{30.0};

  void validate() const;
};

/// One vehicle the generator decided to create.
struct SpawnSpec {
  double time{0.0};  ///< spawn time (0 = present at t=0)
  Arm arm{Arm::kNorth};
  int lane{0};
  Maneuver maneuver{Maneuver::kStraight};
  double start_s{4.0};       ///< arc position along the route at spawn
  double desired_speed{8.0};  ///< IDM desired speed (m/s)
  double start_speed{0.0};    ///< initial speed (m/s)
  bool connected{false};
  AgentKind kind{AgentKind::kCar};
  /// Lane-change directive: 0 none, -1 left, +1 right (maneuver layer).
  int lane_change{0};
  double lane_change_trigger_s{0.0};
};

/// A parked truck occluding sight lines near a stop line.
struct OccluderSpec {
  Arm arm{Arm::kNorth};
  int lane{0};
  Maneuver maneuver{Maneuver::kStraight};
  double s{0.0};
  double length{8.5};
};

struct PedSpec {
  Arm arm{Arm::kNorth};
  /// Sidewalk side (crossers: which end of the crosswalk they start from).
  bool east_side{false};
  /// Walk direction along the path is reversed.
  bool reverse{false};
  /// Lead-in distance walked before reaching the nominal path start (m);
  /// staggers when crossers step into the roadway.
  double start_offset{0.0};
  double walk_speed{1.35};
  /// True: walks the arm's crosswalk (can conflict with traffic).
  /// False: walks the sidewalk parallel to the arm (pipeline load only).
  bool crossing{false};
};

/// Outcome pinned into a committed scenario file: replaying the anchor must
/// reproduce these values exactly (doubles are serialized as hexfloats).
struct SpecExpectations {
  bool present{false};
  int collisions{0};
  double min_vehicle_gap{0.0};
  double min_ped_gap{0.0};
};

struct ScenarioSpec {
  std::uint64_t seed{0};
  double duration{14.0};
  SignalController::Timing signal{};
  ManeuverConfig maneuver{};
  std::vector<SpawnSpec> spawns;
  std::vector<OccluderSpec> occluders;
  std::vector<PedSpec> pedestrians;
  SpecExpectations expect{};

  /// Contract-checks the spec against a road network: every spawn references
  /// a route the network can supply, every arc position lies on that route,
  /// all scalars are finite and in range.
  void validate(const RoadNetwork& net) const;
};

/// Sample a scenario. Pure function of (cfg, seed): no global state, no
/// wall clock — byte-identical output for a given input on every replay.
ScenarioSpec generate_scenario(const GenConfig& cfg, std::uint64_t seed);

/// Materialize a spec into a runnable Scenario (world + agents). The spec is
/// validated first. `base_world` supplies sensor/timing knobs (the spec owns
/// seed, signal timing and the maneuver layer); generated scenarios have no
/// scripted ego/threat, so Scenario::ego/threat stay kInvalidAgent.
Scenario build_scenario(const ScenarioSpec& spec,
                        const WorldConfig& base_world = {});

/// The canonical world profile the search harness and the committed replay
/// anchors use: coarse 16-channel LiDAR (CI-affordable), all behavioral
/// knobs at defaults.
WorldConfig search_world_config();

// --- Serialization (tests/scenarios/*.scn) --------------------------------

/// Canonical text form. parse(emit(s)) reproduces every field bit-exactly
/// (doubles are hexfloats) and emit(parse(emit(s))) == emit(s).
std::string emit_spec(const ScenarioSpec& spec);

enum class SpecParseStatus : std::uint8_t {
  kOk,
  kBadHeader,    ///< missing/unsupported "erpd-scenario v1" header
  kBadSyntax,    ///< wrong token count / malformed line
  kBadValue,     ///< unparseable, non-finite or out-of-range value
  kUnknownKey,   ///< unrecognized line keyword
};

const char* to_string(SpecParseStatus s);

/// Total parser over arbitrary text (the pc::try_decode pattern): never
/// throws, classifies every malformed input through SpecParseStatus and
/// reports the offending 1-based line.
struct SpecParseResult {
  SpecParseStatus status{SpecParseStatus::kOk};
  std::size_t line{0};
  std::string message;
  ScenarioSpec spec{};
  bool ok() const { return status == SpecParseStatus::kOk; }
};

SpecParseResult try_parse_spec(std::string_view text);

}  // namespace erpd::sim
