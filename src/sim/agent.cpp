#include "sim/agent.hpp"

#include <algorithm>

namespace erpd::sim {

Vehicle::Vehicle(AgentId id, VehicleParams params, int route_id,
                 double start_s, double start_speed)
    : id_(id),
      params_(params),
      route_id_(route_id),
      s_(start_s),
      v_(start_speed) {}

geom::Vec2 Vehicle::position(const RoadNetwork& net) const {
  const geom::Polyline& path = net.route(route_id_).path;
  // The branch is load-bearing for the goldens: outside an executing lane
  // change the offset is exactly 0.0 and the returned point must be the
  // same bits the pre-maneuver simulator produced (adding +0.0 could turn
  // a -0.0 coordinate into +0.0).
  if (lat_offset_ == 0.0) return path.point_at(s_);  // lint-ok: R6 exact-inert gate
  return path.point_at(s_) + path.tangent_at(s_).perp() * lat_offset_;
}

double Vehicle::heading(const RoadNetwork& net) const {
  return net.route(route_id_).path.heading_at(s_);
}

geom::Obb Vehicle::obb(const RoadNetwork& net) const {
  return {position(net), heading(net), params_.dims.length,
          params_.dims.width};
}

geom::Pose Vehicle::sensor_pose(const RoadNetwork& net,
                                double sensor_height) const {
  geom::Pose p;
  p.position = {position(net), sensor_height};
  p.yaw = heading(net);
  return p;
}

geom::Vec2 Vehicle::velocity(const RoadNetwork& net) const {
  return geom::Vec2::from_heading(heading(net)) * v_;
}

bool Vehicle::finished(const RoadNetwork& net) const {
  return s_ >= net.route(route_id_).path.length() - 1e-6;
}

void Vehicle::advance(double accel_cmd, double dt) {
  if (crashed_ || params_.parked) {
    v_ = 0.0;
    a_ = 0.0;
    return;
  }
  a_ = std::clamp(accel_cmd, -params_.max_brake, params_.idm.max_accel);
  const double v_new = std::max(0.0, v_ + a_ * dt);
  // Trapezoidal displacement with the clamped speed.
  s_ += 0.5 * (v_ + v_new) * dt;
  v_ = v_new;
  if (lat_offset_ != 0.0) {  // lint-ok: R6 exact-inert gate
    // Lateral blend toward the target lane center, saturating at exactly 0
    // so the inert-gate comparison above re-arms when the change completes.
    const double step = lat_rate_ * dt;
    if (lat_offset_ > 0.0) {
      lat_offset_ = std::max(0.0, lat_offset_ - step);
    } else {
      lat_offset_ = std::min(0.0, lat_offset_ + step);
    }
  }
}

void Vehicle::learn_hazard(AgentId hazard, double now,
                           bool from_dissemination) {
  const auto it = hazards_.find(hazard);
  if (it == hazards_.end()) {
    hazards_.emplace(hazard, HazardKnowledge{now, from_dissemination});
    return;
  }
  // A dissemination upgrades sensor-only knowledge: the warning is what the
  // driver actually reacts to, so the reaction clock starts at its arrival.
  if (from_dissemination && !it->second.from_dissemination) {
    it->second.from_dissemination = true;
    it->second.aware_since = now;
  }
}

void Vehicle::set_lane_change_directive(int direction, double trigger_s) {
  maneuver_.desired_direction = direction;
  maneuver_.trigger_s = trigger_s;
}

void Vehicle::begin_lane_change(const RoadNetwork& net, int new_route_id,
                                double new_s, double duration) {
  const geom::Vec2 here = position(net);
  route_id_ = new_route_id;
  s_ = new_s;
  const geom::Polyline& path = net.route(new_route_id).path;
  // Signed offset of the physical position from the new lane's centerline
  // (+ = left of travel), carried and blended away by advance().
  const geom::Vec2 delta = here - path.point_at(new_s);
  lat_offset_ = delta.dot(path.tangent_at(new_s).perp());
  lat_rate_ = duration > 0.0 ? std::abs(lat_offset_) / duration
                             : std::abs(lat_offset_);
}

void Vehicle::start_yield(AgentId hazard, double stop_s) {
  const auto it = yields_.find(hazard);
  if (it == yields_.end()) {
    yields_.emplace(hazard, stop_s);
  } else {
    it->second = std::min(it->second, stop_s);
  }
}

Pedestrian::Pedestrian(AgentId id, PedestrianParams params,
                       geom::Polyline path, double start_s)
    : id_(id),
      params_(params),
      path_(std::move(path)),
      s_(start_s),
      speed_(params.walk_speed) {}

geom::Vec2 Pedestrian::position() const { return path_.point_at(s_); }

double Pedestrian::heading() const { return path_.heading_at(s_); }

geom::Obb Pedestrian::obb() const {
  return {position(), heading(), params_.dims.length, params_.dims.width};
}

geom::Vec2 Pedestrian::velocity() const {
  return geom::Vec2::from_heading(heading()) * speed_;
}

bool Pedestrian::finished() const { return s_ >= path_.length() - 1e-6; }

void Pedestrian::advance(double dt) {
  s_ = std::min(s_ + speed_ * dt, path_.length());
}

}  // namespace erpd::sim
