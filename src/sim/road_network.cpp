#include "sim/road_network.hpp"

#include <cmath>

#include "core/check.hpp"

namespace erpd::sim {

using geom::Polyline;
using geom::Vec2;

geom::Vec2 RoadNetwork::arm_direction(Arm a) {
  switch (a) {
    case Arm::kNorth: return {0.0, 1.0};
    case Arm::kEast: return {1.0, 0.0};
    case Arm::kSouth: return {0.0, -1.0};
    case Arm::kWest: return {-1.0, 0.0};
  }
  return {};
}

Arm RoadNetwork::opposite(Arm a) {
  return static_cast<Arm>((static_cast<int>(a) + 2) % kArmCount);
}

namespace {

Arm arm_from_direction(Vec2 d) {
  if (d.y > 0.5) return Arm::kNorth;
  if (d.x > 0.5) return Arm::kEast;
  if (d.y < -0.5) return Arm::kSouth;
  return Arm::kWest;
}

Vec2 rotate_ccw(Vec2 v) { return {-v.y, v.x}; }
Vec2 rotate_cw(Vec2 v) { return {v.y, -v.x}; }
/// Unit vector pointing to the right of travel direction d.
Vec2 right_of(Vec2 d) { return rotate_cw(d); }

}  // namespace

Arm RoadNetwork::exit_arm(Arm entry, Maneuver m) {
  const Vec2 d = -arm_direction(entry);  // travel direction of the approach
  switch (m) {
    case Maneuver::kStraight: return opposite(entry);
    case Maneuver::kLeft: return arm_from_direction(rotate_ccw(d));
    case Maneuver::kRight: return arm_from_direction(rotate_cw(d));
  }
  return opposite(entry);
}

SignalController::Light SignalController::state(Arm arm, double time) const {
  const double half = t_.green + t_.yellow + t_.all_red;
  double pt = std::fmod(time, cycle_length());
  if (pt < 0.0) pt += cycle_length();
  // Phase A (first half of the cycle) serves N/S; phase B serves E/W.
  const bool ns = arm == Arm::kNorth || arm == Arm::kSouth;
  const double local = ns ? pt : pt - half;
  if (local < 0.0 || local >= half) return Light::kRed;
  if (local < t_.green) return Light::kGreen;
  if (local < t_.green + t_.yellow) return Light::kYellow;
  return Light::kRed;
}

double SignalController::time_to_green(Arm arm, double time) const {
  if (state(arm, time) == Light::kGreen) return 0.0;
  const double cycle = cycle_length();
  // Scan forward at fine resolution — cheap and robust for a fixed cycle.
  for (double dt = 0.1; dt <= cycle + 0.1; dt += 0.1) {
    if (state(arm, time + dt) == Light::kGreen) return dt;
  }
  return cycle;
}

RoadNetwork::RoadNetwork(RoadConfig cfg) : cfg_(cfg) {
  ERPD_REQUIRE(cfg_.lanes_per_direction >= 1,
               "RoadNetwork: need at least one lane, got ",
               cfg_.lanes_per_direction);
  ERPD_REQUIRE(cfg_.lane_width > 0.0, "RoadNetwork: lane_width must be > 0, got ",
               cfg_.lane_width);
  const double road_half = cfg_.lanes_per_direction * cfg_.lane_width;
  box_half_ = road_half + 0.5;
  stop_line_dist_ = box_half_ + cfg_.stopline_setback;
  ERPD_REQUIRE(cfg_.arm_length > stop_line_dist_ + 1.0,
               "RoadNetwork: arm_length too short: ", cfg_.arm_length,
               " <= ", stop_line_dist_ + 1.0);
  build_routes();
  build_crosswalks();
}

geom::Aabb RoadNetwork::intersection_box() const {
  return {{-box_half_, -box_half_}, {box_half_, box_half_}};
}

bool RoadNetwork::in_intersection(Vec2 p) const {
  return intersection_box().contains(p);
}

geom::Polyline RoadNetwork::build_path(Arm entry, int lane, Maneuver m) const {
  const Vec2 u = arm_direction(entry);
  const Vec2 d = -u;  // direction of travel toward the intersection
  const double w = cfg_.lane_width;
  const double off_in = (lane + 0.5) * w;
  const Vec2 r_in = right_of(d);

  const Arm exit = exit_arm(entry, m);
  const Vec2 u_out = arm_direction(exit);
  const Vec2 r_out = right_of(u_out);
  int exit_lane = lane;
  if (m == Maneuver::kLeft) exit_lane = 0;
  if (m == Maneuver::kRight) exit_lane = cfg_.lanes_per_direction - 1;
  const double off_out = (exit_lane + 0.5) * w;

  const Vec2 far_in = u * cfg_.arm_length + r_in * off_in;
  const Vec2 near_in = u * stop_line_dist_ + r_in * off_in;
  const Vec2 near_out = u_out * stop_line_dist_ + r_out * off_out;
  const Vec2 far_out = u_out * cfg_.arm_length + r_out * off_out;

  std::vector<Vec2> pts;
  // Approach, densified so arc-length queries near the stop line are smooth.
  const double approach_len = (near_in - far_in).norm();
  const int approach_steps =
      std::max(2, static_cast<int>(approach_len / (4.0 * cfg_.curve_step)));
  for (int i = 0; i <= approach_steps; ++i) {
    pts.push_back(geom::lerp(far_in, near_in,
                             static_cast<double>(i) / approach_steps));
  }

  if (m == Maneuver::kStraight) {
    pts.push_back(near_out);
  } else {
    // Quadratic Bezier: control point at the intersection of the entry and
    // exit tangent lines.
    const double denom = d.cross(u_out);
    Vec2 ctrl = (near_in + near_out) * 0.5;
    if (std::abs(denom) > 1e-9) {
      const double t = (near_out - near_in).cross(u_out) / denom;
      ctrl = near_in + d * t;
    }
    const double approx_len =
        (ctrl - near_in).norm() + (near_out - ctrl).norm();
    const int steps =
        std::max(4, static_cast<int>(approx_len / cfg_.curve_step));
    for (int i = 1; i <= steps; ++i) {
      const double t = static_cast<double>(i) / steps;
      const Vec2 p = near_in * ((1 - t) * (1 - t)) + ctrl * (2 * t * (1 - t)) +
                     near_out * (t * t);
      pts.push_back(p);
    }
  }

  pts.push_back(far_out);
  return Polyline{std::move(pts)};
}

void RoadNetwork::build_routes() {
  routes_.clear();
  for (int a = 0; a < kArmCount; ++a) {
    const Arm arm = static_cast<Arm>(a);
    for (int lane = 0; lane < cfg_.lanes_per_direction; ++lane) {
      std::vector<Maneuver> allowed;
      const int last = cfg_.lanes_per_direction - 1;
      if (cfg_.lanes_per_direction == 1) {
        allowed = {Maneuver::kLeft, Maneuver::kStraight, Maneuver::kRight};
      } else if (lane == 0) {
        allowed = {Maneuver::kLeft, Maneuver::kStraight};
      } else if (lane == last) {
        allowed = {Maneuver::kStraight, Maneuver::kRight};
      } else {
        allowed = {Maneuver::kStraight};
      }
      for (Maneuver m : allowed) {
        Route r;
        r.id = static_cast<int>(routes_.size());
        r.entry_arm = arm;
        r.entry_lane = lane;
        r.maneuver = m;
        r.exit_arm = exit_arm(arm, m);
        r.path = build_path(arm, lane, m);
        r.stop_line_s = cfg_.arm_length - stop_line_dist_;
        // Locate where the path crosses the intersection box.
        const double len = r.path.length();
        double entry_s = r.stop_line_s;
        double exit_s = len;
        bool inside = false;
        for (double s = 0.0; s <= len; s += 0.5) {
          const bool in = in_intersection(r.path.point_at(s));
          if (in && !inside) {
            entry_s = s;
            inside = true;
          } else if (!in && inside) {
            exit_s = s;
            break;
          }
        }
        r.box_entry_s = entry_s;
        r.box_exit_s = exit_s;
        routes_.push_back(std::move(r));
      }
    }
  }
}

void RoadNetwork::build_crosswalks() {
  crosswalks_.clear();
  const double road_half = cfg_.lanes_per_direction * cfg_.lane_width;
  const double cw_dist = box_half_ + cfg_.crosswalk_offset;
  for (int a = 0; a < kArmCount; ++a) {
    const Arm arm = static_cast<Arm>(a);
    const Vec2 u = arm_direction(arm);
    const Vec2 perp = u.perp();
    const Vec2 center = u * cw_dist;
    const Vec2 e0 = center - perp * (road_half + 2.0);
    const Vec2 e1 = center + perp * (road_half + 2.0);
    Crosswalk cw;
    cw.arm = arm;
    cw.path = Polyline{{e0, e1}};
    crosswalks_.push_back(std::move(cw));
  }
}

std::vector<int> RoadNetwork::routes_from(LaneRef lane) const {
  std::vector<int> out;
  for (const Route& r : routes_) {
    if (r.entry_arm == lane.arm && r.entry_lane == lane.lane) {
      out.push_back(r.id);
    }
  }
  return out;
}

std::optional<int> RoadNetwork::find_route(Arm entry, int lane,
                                           Maneuver m) const {
  for (const Route& r : routes_) {
    if (r.entry_arm == entry && r.entry_lane == lane && r.maneuver == m) {
      return r.id;
    }
  }
  return std::nullopt;
}

const Crosswalk& RoadNetwork::crosswalk(Arm arm) const {
  for (const Crosswalk& cw : crosswalks_) {
    if (cw.arm == arm) return cw;
  }
  ERPD_UNREACHABLE("crosswalk: no crosswalk built for arm ",
                   static_cast<int>(arm));
}

}  // namespace erpd::sim
