#pragma once
// Maneuver layer above car_following (ROADMAP item 4, DESIGN.md §15).
//
// The IDM controller in World::control_vehicle handles longitudinal safety;
// this layer adds *lateral* decisions in the state-machine planner shape of
// the CARLA motion-planning reference: a vehicle is always in exactly one of
//   kFollowLane   — default lane keeping,
//   kStopAtLine   — held at a red/yellow signal,
//   kChangeLaneLeft / kChangeLaneRight — a lane change is desired and the
//                   vehicle is waiting for an acceptable gap or executing
//                   the lateral blend into the target lane.
// Transitions are pure functions of the (deterministically ordered) world
// state, so generated traffic replays bit-identically for any thread count.
//
// The whole layer is OFF by default (ManeuverConfig::enabled == false): the
// planner is never consulted and no vehicle ever carries a lateral offset,
// which keeps every pre-existing golden byte-identical.

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/road_network.hpp"
#include "sim/types.hpp"

namespace erpd::sim {

class Vehicle;

enum class ManeuverState : std::uint8_t {
  kFollowLane,
  kStopAtLine,
  kChangeLaneLeft,
  kChangeLaneRight,
};

const char* to_string(ManeuverState s);

struct ManeuverConfig {
  /// Master switch. Off = the planner never runs and positions are
  /// bit-identical to the pre-maneuver simulator.
  bool enabled{false};
  /// Seconds the lateral blend into the target lane takes.
  double lane_change_duration{3.0};
  /// Minimum bumper gap to the new leader at the moment of commit (m).
  double min_lead_gap{6.0};
  /// Minimum bumper gap to the new follower at the moment of commit (m).
  double min_lag_gap{8.0};
  /// Speed-dependent addend: required gap grows by this many seconds of the
  /// relevant vehicle's speed (Gipps-style time-gap acceptance).
  double gap_time_headway{0.8};
  /// Seconds of continuous gap rejection before the change is abandoned.
  double abort_after{4.0};
  /// No change is attempted (and a pending one is aborted) closer than this
  /// to the stop line — mirrors real lane-change prohibition zones.
  double stop_line_clearance{18.0};

  /// Contract-checks every parameter range (ERPD_REQUIRE).
  void validate() const;
};

/// Per-vehicle maneuver bookkeeping. Lives in Vehicle; inert (all zeros)
/// while the layer is disabled.
struct ManeuverStatus {
  ManeuverState state{ManeuverState::kFollowLane};
  /// Scheduled lane-change intent: 0 none, -1 toward lane-1 (left, inner),
  /// +1 toward lane+1 (right, outer). Cleared on completion or abort.
  int desired_direction{0};
  /// Arc length at which the desired change arms (generator directive).
  double trigger_s{0.0};
  /// Time the pending change started waiting for a gap (< 0: not waiting).
  double waiting_since{-1.0};
  int completed_changes{0};
  int aborted_changes{0};
};

/// What the planner saw in the target lane when it evaluated a change.
struct GapObservation {
  /// Bumper gap to the nearest vehicle ahead in the target lane (+inf when
  /// the lane is clear ahead).
  double lead_gap{0.0};
  /// Bumper gap to the nearest vehicle behind (+inf when clear behind).
  double lag_gap{0.0};
  /// Speed of the trailing vehicle (its braking need scales the lag gap).
  double lag_speed{0.0};
};

/// Deterministic Gipps-style gap acceptance: the lead gap must cover the
/// configured minimum plus one time-headway of own speed, the lag gap the
/// minimum plus one time-headway of the trailing vehicle's speed.
bool gap_acceptable(const ManeuverConfig& cfg, double my_speed,
                    const GapObservation& gap);

class ManeuverPlanner {
 public:
  explicit ManeuverPlanner(ManeuverConfig cfg);

  const ManeuverConfig& config() const { return cfg_; }

  /// Advance one vehicle's maneuver state machine by one tick. May mutate
  /// the vehicle (route switch + lateral offset when a change commits).
  /// Reads the fleet in its (stable) storage order, so the update sequence
  /// is a pure function of world state.
  void update(Vehicle& v, const RoadNetwork& net,
              const std::vector<Vehicle>& fleet,
              const SignalController& signals, double now) const;

  /// Lead/lag gaps the vehicle would face in `target_route`'s lane, for the
  /// commit decision (exposed for unit tests).
  GapObservation observe_gaps(const Vehicle& v, const RoadNetwork& net,
                              const std::vector<Vehicle>& fleet,
                              const Route& target_route) const;

  /// The route the vehicle would switch to for a `direction` change
  /// (preferring its current intersection maneuver, then straight, then
  /// right), or nullopt when the target lane cannot host it.
  std::optional<int> target_route(const Vehicle& v, const RoadNetwork& net,
                                  int direction) const;

 private:
  ManeuverConfig cfg_;
};

}  // namespace erpd::sim
