#pragma once
// Simulated agents: vehicles (route followers) and pedestrians (crosswalk
// walkers). Agents hold kinematic state; the control policy lives in
// sim::World, which has the global view (leaders, signals, hazards).

#include <map>
#include <optional>
#include <vector>

#include "geom/mat4.hpp"
#include "geom/obb.hpp"
#include "geom/polyline.hpp"
#include "sim/car_following.hpp"
#include "sim/maneuver.hpp"
#include "sim/road_network.hpp"
#include "sim/types.hpp"

namespace erpd::sim {

struct VehicleParams {
  AgentKind kind{AgentKind::kCar};
  BodyDims dims{default_dims(AgentKind::kCar)};
  IdmModel idm{};
  /// Emergency braking capability (m/s^2).
  double max_brake{6.5};
  /// Driver reaction delay between becoming aware of a hazard and braking.
  double reaction_time{1.0};
  /// Connected vehicles upload perception data and receive disseminations.
  bool connected{false};
  /// Attentive drivers also yield to conflicts they can *see* (CARLA-
  /// autopilot-style junction negotiation). The scripted conflict vehicles
  /// are inattentive: per the paper's evaluation setup they decelerate only
  /// for disseminated perception data, which is what makes the occluded
  /// accidents inevitable without the system.
  bool attentive{true};
  /// A violator ignores the signal (red-light-violation scenario).
  bool runs_red_light{false};
  /// Parked/stopped prop (e.g. occluding trucks); never moves.
  bool parked{false};
};

/// A hazard the driver knows about, with when they learned of it; braking
/// starts `reaction_time` after `aware_since`.
struct HazardKnowledge {
  double aware_since{0.0};
  /// True if the knowledge came from the edge server rather than own sensors.
  bool from_dissemination{false};
};

class Vehicle {
 public:
  Vehicle(AgentId id, VehicleParams params, int route_id, double start_s,
          double start_speed);

  AgentId id() const { return id_; }
  const VehicleParams& params() const { return params_; }
  int route_id() const { return route_id_; }

  double s() const { return s_; }
  double speed() const { return v_; }
  double accel() const { return a_; }

  geom::Vec2 position(const RoadNetwork& net) const;
  double heading(const RoadNetwork& net) const;
  geom::Obb obb(const RoadNetwork& net) const;
  /// Sensor pose: roof-mounted LiDAR at standard height.
  geom::Pose sensor_pose(const RoadNetwork& net, double sensor_height) const;
  geom::Vec2 velocity(const RoadNetwork& net) const;

  bool finished(const RoadNetwork& net) const;

  /// Integrate longitudinal dynamics with commanded acceleration.
  void advance(double accel_cmd, double dt);

  /// Hazard bookkeeping (driver memory).
  void learn_hazard(AgentId hazard, double now, bool from_dissemination);
  const std::map<AgentId, HazardKnowledge>& known_hazards() const {
    return hazards_;
  }
  void forget_hazard(AgentId hazard) { hazards_.erase(hazard); }

  /// Yield latch: once the driver decides to yield to a hazard they hold a
  /// fixed stop target until the hazard clears, instead of re-deciding from
  /// instantaneous TTC every tick (which would creep into the conflict).
  bool yielding_to(AgentId hazard) const { return yields_.contains(hazard); }
  double yield_stop_s(AgentId hazard) const { return yields_.at(hazard); }
  void start_yield(AgentId hazard, double stop_s);
  void end_yield(AgentId hazard) { yields_.erase(hazard); }

  /// Frozen by a collision: vehicle stops where it is.
  bool crashed() const { return crashed_; }
  void mark_crashed() { crashed_ = true; }

  // --- Maneuver layer (DESIGN.md §15; inert while the layer is off) -------

  const ManeuverStatus& maneuver() const { return maneuver_; }
  ManeuverStatus& maneuver() { return maneuver_; }

  /// Arm a lane-change intent: `direction` is -1 (left) or +1 (right),
  /// `trigger_s` the arc length at which the planner starts looking for a
  /// gap. Used by the scenario generator; a no-op unless the world's
  /// maneuver layer is enabled.
  void set_lane_change_directive(int direction, double trigger_s);

  /// Commit a lane change: switch to `new_route_id` at arc length `new_s`,
  /// carrying the current physical position as a lateral offset that decays
  /// to zero over `duration` seconds (the lateral blend).
  void begin_lane_change(const RoadNetwork& net, int new_route_id,
                         double new_s, double duration);

  /// Signed lateral offset from the route path (+ = left of travel). Always
  /// exactly 0.0 outside an executing lane change, so position() reduces to
  /// the pre-maneuver arithmetic bit-for-bit.
  double lateral_offset() const { return lat_offset_; }

 private:
  AgentId id_;
  VehicleParams params_;
  int route_id_;
  double s_;
  double v_;
  double a_{0.0};
  bool crashed_{false};
  ManeuverStatus maneuver_{};
  double lat_offset_{0.0};
  double lat_rate_{0.0};
  std::map<AgentId, HazardKnowledge> hazards_;
  std::map<AgentId, double> yields_;
};

struct PedestrianParams {
  BodyDims dims{default_dims(AgentKind::kPedestrian)};
  double walk_speed{1.35};
};

class Pedestrian {
 public:
  Pedestrian(AgentId id, PedestrianParams params, geom::Polyline path,
             double start_s = 0.0);

  AgentId id() const { return id_; }
  const PedestrianParams& params() const { return params_; }

  double s() const { return s_; }
  double speed() const { return speed_; }
  void set_speed(double v) { speed_ = v; }

  geom::Vec2 position() const;
  double heading() const;
  geom::Obb obb() const;
  geom::Vec2 velocity() const;

  bool finished() const;

  void advance(double dt);

 private:
  AgentId id_;
  PedestrianParams params_;
  geom::Polyline path_;
  double s_;
  double speed_;
};

}  // namespace erpd::sim
