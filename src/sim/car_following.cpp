#include "sim/car_following.hpp"

#include <algorithm>
#include <cmath>

#include "sim/types.hpp"

namespace erpd::sim {

double PipesModel::safe_distance(double v) const {
  const double v_mph = ms_to_mph(std::max(v, 0.0));
  return std::max(min_gap, car_length * v_mph / 10.0);
}

bool GippsModel::compliant(double gap, double follower_speed) const {
  if (follower_speed <= 0.1) return gap >= standstill_gap;
  return gap / follower_speed >= safe_time_gap();
}

double GippsModel::next_speed(double v_f, double v_l, double gap) const {
  const double theta = reaction_time;
  // Acceleration branch.
  const double ratio = std::clamp(v_f / desired_speed, 0.0, 1.0);
  const double v_acc =
      v_f + 2.5 * max_accel * theta * (1.0 - ratio) * std::sqrt(0.025 + ratio);

  // Braking branch (safe speed such that the follower can stop behind the
  // leader even if the leader brakes at leader_braking).
  double v_brk = std::numeric_limits<double>::infinity();
  if (std::isfinite(gap)) {
    const double b = braking;
    const double s = std::max(gap - standstill_gap, 0.0);
    const double disc =
        b * b * theta * theta + b * (2.0 * s - v_f * theta + v_l * v_l / leader_braking);
    v_brk = disc >= 0.0 ? -b * theta + std::sqrt(disc) : 0.0;
  }
  return std::max(0.0, std::min({v_acc, v_brk, desired_speed}));
}

double IdmModel::acceleration(double v, double v_leader, double gap) const {
  const double free_term =
      1.0 - std::pow(std::max(v, 0.0) / desired_speed, accel_exponent);
  if (!std::isfinite(gap)) return max_accel * free_term;

  const double dv = v - v_leader;
  const double s_star =
      min_gap + std::max(0.0, v * time_headway +
                                  v * dv / (2.0 * std::sqrt(max_accel * comfort_decel)));
  const double s = std::max(gap, 0.1);
  return max_accel * (free_term - (s_star / s) * (s_star / s));
}

}  // namespace erpd::sim
