#pragma once
// Small statistics helpers shared by clustering and the evaluation harness.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "geom/vec2.hpp"

namespace erpd::geom {

/// Arithmetic mean; 0 for empty input.
inline double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

/// Population standard deviation; 0 for empty input.
inline double stddev(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  const double m = mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(v.size()));
}

inline Vec2 centroid(const std::vector<Vec2>& pts) {
  Vec2 c{};
  if (pts.empty()) return c;
  for (Vec2 p : pts) c += p;
  return c / static_cast<double>(pts.size());
}

/// Root-mean-square distance of points from their centroid — the "location
/// deviation" metric used by the crowd clusterer (paper threshold beta).
inline double location_stddev(const std::vector<Vec2>& pts) {
  if (pts.empty()) return 0.0;
  const Vec2 c = centroid(pts);
  double acc = 0.0;
  for (Vec2 p : pts) acc += distance_sq(p, c);
  return std::sqrt(acc / static_cast<double>(pts.size()));
}

inline double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = std::clamp(p, 0.0, 1.0) * (static_cast<double>(v.size()) - 1.0);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

}  // namespace erpd::geom
