#include "geom/gaussian2d.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"
#include "geom/angle.hpp"

namespace erpd::geom {

Gaussian2D::Gaussian2D(Vec2 mean, double sigma_x, double sigma_y, double rho)
    : mean_(mean), sx_(sigma_x), sy_(sigma_y), rho_(rho) {
  ERPD_REQUIRE(sx_ > 0.0 && sy_ > 0.0,
               "Gaussian2D: sigma must be positive, got sigma_x=", sx_,
               " sigma_y=", sy_);
  ERPD_REQUIRE(rho_ > -1.0 && rho_ < 1.0,
               "Gaussian2D: rho must be in (-1, 1), got ", rho_);
}

double Gaussian2D::mahalanobis_sq(Vec2 p) const {
  const double dx = (p.x - mean_.x) / sx_;
  const double dy = (p.y - mean_.y) / sy_;
  const double one_m_r2 = 1.0 - rho_ * rho_;
  return (dx * dx - 2.0 * rho_ * dx * dy + dy * dy) / one_m_r2;
}

double Gaussian2D::pdf(Vec2 p) const {
  const double one_m_r2 = 1.0 - rho_ * rho_;
  const double norm = 1.0 / (kTwoPi * sx_ * sy_ * std::sqrt(one_m_r2));
  return norm * std::exp(-0.5 * mahalanobis_sq(p));
}

double Gaussian2D::mass_in_circle(Vec2 center, double radius, int radial_steps,
                                  int angular_steps) const {
  ERPD_REQUIRE(radial_steps > 0 && angular_steps > 0,
               "Gaussian2D::mass_in_circle: steps must be positive, got ",
               radial_steps, "x", angular_steps);
  if (radius <= 0.0) return 0.0;
  double acc = 0.0;
  const double dr = radius / radial_steps;
  const double da = kTwoPi / angular_steps;
  for (int i = 0; i < radial_steps; ++i) {
    const double r = (i + 0.5) * dr;
    for (int j = 0; j < angular_steps; ++j) {
      const double a = (j + 0.5) * da;
      const Vec2 p = center + Vec2::from_heading(a) * r;
      acc += pdf(p) * r * dr * da;
    }
  }
  return std::min(acc, 1.0);
}

Vec2 Gaussian2D::sample(std::mt19937_64& rng) const {
  std::normal_distribution<double> n01(0.0, 1.0);
  const double u = n01(rng);
  const double v = n01(rng);
  // Cholesky of [[sx^2, rho sx sy], [rho sx sy, sy^2]].
  const double x = sx_ * u;
  const double y = sy_ * (rho_ * u + std::sqrt(1.0 - rho_ * rho_) * v);
  return mean_ + Vec2{x, y};
}

Gaussian2D Gaussian2D::convolved(const Gaussian2D& o) const {
  const double cxy = rho_ * sx_ * sy_ + o.rho_ * o.sx_ * o.sy_;
  const double vx = sx_ * sx_ + o.sx_ * o.sx_;
  const double vy = sy_ * sy_ + o.sy_ * o.sy_;
  const double sx = std::sqrt(vx);
  const double sy = std::sqrt(vy);
  double rho = cxy / (sx * sy);
  rho = std::clamp(rho, -0.999, 0.999);
  return Gaussian2D{mean_ + o.mean_, sx, sy, rho};
}

}  // namespace erpd::geom
