#pragma once
// Bivariate Gaussian distribution.
//
// Trajectory predictors (paper refs [24]-[26]) express positional uncertainty
// as bivariate Gaussians; our predictor does the same and the relevance
// estimator can weight collision areas by the probability mass inside them.

#include <random>

#include "geom/vec2.hpp"

namespace erpd::geom {

class Gaussian2D {
 public:
  /// Standard normal at the origin.
  Gaussian2D() : Gaussian2D(Vec2{}, 1.0, 1.0, 0.0) {}

  /// Axis-standard deviations and correlation rho in (-1, 1).
  Gaussian2D(Vec2 mean, double sigma_x, double sigma_y, double rho);

  Vec2 mean() const { return mean_; }
  double sigma_x() const { return sx_; }
  double sigma_y() const { return sy_; }
  double rho() const { return rho_; }

  double pdf(Vec2 p) const;

  /// Squared Mahalanobis distance of p from the mean.
  double mahalanobis_sq(Vec2 p) const;

  /// Probability mass inside the disk (center, radius), computed by midpoint
  /// quadrature on a polar grid. Accuracy ~1e-3 with default resolution.
  double mass_in_circle(Vec2 center, double radius, int radial_steps = 32,
                        int angular_steps = 48) const;

  /// Draw a sample.
  Vec2 sample(std::mt19937_64& rng) const;

  /// Convolution with an independent Gaussian (adds covariances); used to
  /// grow prediction uncertainty over the horizon.
  Gaussian2D convolved(const Gaussian2D& o) const;

 private:
  Vec2 mean_{};
  double sx_{1.0};
  double sy_{1.0};
  double rho_{0.0};
};

}  // namespace erpd::geom
