#pragma once
// Nearest-site (Voronoi) partition of the plane.
//
// The EMP baseline [9] partitions the road into non-overlapping regions with
// a Voronoi diagram over the connected vehicles' positions; each vehicle
// uploads only the points falling in its own cell. Cell membership of a point
// is exactly the nearest-site query, which is all EMP needs — we therefore
// expose a partition object rather than an explicit diagram.

#include <cstddef>
#include <optional>
#include <vector>

#include "geom/vec2.hpp"

namespace erpd::geom {

class VoronoiPartition {
 public:
  VoronoiPartition() = default;
  explicit VoronoiPartition(std::vector<Vec2> sites);

  std::size_t site_count() const { return sites_.size(); }
  const std::vector<Vec2>& sites() const { return sites_; }

  /// Index of the cell (site) owning point p, or nullopt if no sites.
  /// Ties break toward the lowest site index, making the partition exact
  /// (every point belongs to exactly one cell).
  std::optional<std::size_t> cell_of(Vec2 p) const;

  /// True iff p lies in the cell of `site_index`.
  bool in_cell(Vec2 p, std::size_t site_index) const;

  /// Distance from p to its owning site (inf if no sites).
  double distance_to_owner(Vec2 p) const;

 private:
  std::vector<Vec2> sites_;
};

}  // namespace erpd::geom
