#pragma once
// 2-D vector used for planar world coordinates (meters) and directions.
//
// The traffic map, trajectories, relevance math and clustering all operate in
// a planar world frame; Vec2 is the workhorse value type for those layers.

#include <cmath>
#include <ostream>

namespace erpd::geom {

struct Vec2 {
  double x{0.0};
  double y{0.0};

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2 operator-() const { return {-x, -y}; }

  constexpr Vec2& operator+=(Vec2 o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Vec2& operator-=(Vec2 o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr Vec2& operator*=(double s) {
    x *= s;
    y *= s;
    return *this;
  }

  constexpr bool operator==(const Vec2&) const = default;

  constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
  /// z-component of the 3-D cross product; >0 means `o` is CCW from *this.
  constexpr double cross(Vec2 o) const { return x * o.y - y * o.x; }

  constexpr double norm_sq() const { return x * x + y * y; }
  double norm() const { return std::sqrt(norm_sq()); }

  /// Unit vector in the same direction; returns {0,0} for the zero vector.
  Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }

  /// CCW rotation by `angle_rad`.
  Vec2 rotated(double angle_rad) const {
    const double c = std::cos(angle_rad);
    const double s = std::sin(angle_rad);
    return {c * x - s * y, s * x + c * y};
  }

  /// Perpendicular vector (90 degrees CCW).
  constexpr Vec2 perp() const { return {-y, x}; }

  /// Heading of this vector in radians, in (-pi, pi].
  double heading() const { return std::atan2(y, x); }

  static Vec2 from_heading(double angle_rad) {
    return {std::cos(angle_rad), std::sin(angle_rad)};
  }
};

constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }
inline double distance_sq(Vec2 a, Vec2 b) { return (a - b).norm_sq(); }

/// Linear interpolation; t=0 -> a, t=1 -> b.
constexpr Vec2 lerp(Vec2 a, Vec2 b, double t) { return a + (b - a) * t; }

inline std::ostream& operator<<(std::ostream& os, Vec2 v) {
  return os << '(' << v.x << ", " << v.y << ')';
}

}  // namespace erpd::geom
