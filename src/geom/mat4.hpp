#pragma once
// Homogeneous 4x4 rigid transforms.
//
// The paper's Coordinate Transformation module computes the LiDAR-to-world
// matrix T_lw from each vehicle's SLAM pose and applies
//   [Wx, Wy, Wz, 1]^T = T_lw * [x, y, z, 1]^T
// to every uploaded point. Mat4 implements exactly that projection rule plus
// the inverse (world-to-LiDAR) used by the sensor model.

#include <array>

#include "geom/vec3.hpp"

namespace erpd::geom {

/// 6-DoF pose of a sensor/vehicle in the world frame.
/// Angles follow the aerospace convention: yaw about +z, pitch about +y,
/// roll about +x, applied in yaw-pitch-roll order.
struct Pose {
  Vec3 position{};
  double yaw{0.0};
  double pitch{0.0};
  double roll{0.0};

  constexpr bool operator==(const Pose&) const = default;
};

class Mat4 {
 public:
  /// Identity transform.
  Mat4();

  /// Row-major construction.
  explicit Mat4(const std::array<double, 16>& rm) : m_(rm) {}

  static Mat4 identity() { return Mat4{}; }
  static Mat4 translation(Vec3 t);
  static Mat4 rotation_z(double yaw);
  static Mat4 rotation_y(double pitch);
  static Mat4 rotation_x(double roll);

  /// Rigid transform mapping sensor-frame coordinates into the world frame
  /// for a sensor at `pose` (this is the paper's T_lw).
  static Mat4 from_pose(const Pose& pose);

  double at(int row, int col) const { return m_[row * 4 + col]; }
  double& at(int row, int col) { return m_[row * 4 + col]; }

  Mat4 operator*(const Mat4& o) const;

  /// Apply to a point (homogeneous w = 1). Inline: per-point call overhead
  /// and re-loading the matrix dominate bulk cloud transforms otherwise.
  Vec3 transform_point(Vec3 p) const {
    return {at(0, 0) * p.x + at(0, 1) * p.y + at(0, 2) * p.z + at(0, 3),
            at(1, 0) * p.x + at(1, 1) * p.y + at(1, 2) * p.z + at(1, 3),
            at(2, 0) * p.x + at(2, 1) * p.y + at(2, 2) * p.z + at(2, 3)};
  }
  /// Apply to a direction (homogeneous w = 0; ignores translation).
  Vec3 transform_direction(Vec3 d) const {
    return {at(0, 0) * d.x + at(0, 1) * d.y + at(0, 2) * d.z,
            at(1, 0) * d.x + at(1, 1) * d.y + at(1, 2) * d.z,
            at(2, 0) * d.x + at(2, 1) * d.y + at(2, 2) * d.z};
  }

  /// Inverse of a rigid (rotation + translation) transform. The result is
  /// exact for matrices built from from_pose/translation/rotation_*.
  Mat4 rigid_inverse() const;

  bool almost_equal(const Mat4& o, double eps = 1e-9) const;

 private:
  std::array<double, 16> m_{};  // row-major
};

}  // namespace erpd::geom
