#pragma once
// Oriented bounding box (footprint of a vehicle/pedestrian on the ground
// plane). The simulator uses OBBs for occlusion ray casting and for exact
// collision detection between agents.

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/segment.hpp"
#include "geom/vec2.hpp"

namespace erpd::geom {

class Obb {
 public:
  Obb() = default;
  /// `length` along the heading direction, `width` across it.
  Obb(Vec2 center, double heading, double length, double width);

  Vec2 center() const { return center_; }
  double heading() const { return heading_; }
  double length() const { return length_; }
  double width() const { return width_; }

  /// Corners in CCW order: front-left, rear-left, rear-right, front-right.
  std::array<Vec2, 4> corners() const;

  /// Edges as segments between consecutive corners.
  std::array<Segment, 4> edges() const;

  bool contains(Vec2 p) const;

  /// Separating-axis overlap test.
  bool overlaps(const Obb& o) const;

  /// Minimum distance between the two boxes (0 if overlapping).
  double distance_to(const Obb& o) const;

  /// Distance from a point to the box boundary (0 if inside).
  double distance_to(Vec2 p) const;

  /// First intersection parameter t in [0,1] of a ray segment with the box
  /// boundary, or a negative value if it misses. Hits from inside return 0.
  double ray_hit(const Segment& ray) const;

  Aabb aabb() const;

  /// The diagonal — the paper's "maximum length of the object" used as the
  /// collision-area radius is the object's largest planar dimension.
  double max_extent() const { return std::max(length_, width_); }

 private:
  Vec2 center_{};
  double heading_{0.0};
  double length_{0.0};
  double width_{0.0};
};

/// Structure-of-arrays ray-cast context for many boxes sharing one ray
/// origin (the LiDAR eye), built once per scan. Per box it precomputes the
/// four edge segments — hoisting the sincos-heavy corners() out of the
/// per-ray path — and whether the eye is inside the box.
///
/// ray_hit(i, ray) is bit-identical to boxes[i].ray_hit(ray) for any ray
/// anchored at the eye passed to add(): the edges come from the same
/// corners() math and the per-edge test applies the same intersect()
/// arithmetic, so every intermediate double matches the scalar path's.
/// (With ERPD_LIDAR_SIMD the four edge tests run as one AVX2 lane set over
/// the SoA arrays instead, lane-for-lane the same mul/sub/div sequence;
/// see obb.cpp.)
class ObbRaySoa {
 public:
  void clear() {
    edges_.clear();
    eye_inside_.clear();
    edge_ax_.clear();
    edge_ay_.clear();
    edge_sx_.clear();
    edge_sy_.clear();
  }

  /// Append `box`, precomputing its edges and the eye-containment flag.
  void add(const Obb& box, Vec2 eye);

  std::size_t size() const { return eye_inside_.size(); }

  /// True if the eye given to add() was inside box i — such boxes return a
  /// hit at t = 0 for every ray, with no edge tests needed.
  bool eye_inside(std::size_t i) const { return eye_inside_[i] != 0; }

  /// First intersection parameter of `ray` with box i's boundary (negative
  /// if it misses); bit-identical to Obb::ray_hit for rays from the eye.
  double ray_hit(std::size_t i, const Segment& ray) const;

 private:
  std::vector<Segment> edges_;  // 4 per box, contiguous
  std::vector<std::uint8_t> eye_inside_;
  /// The same edges in SoA form — endpoint a and direction s = b - a, one
  /// contiguous 4-lane group per box — so a vector kernel can load a whole
  /// box with four unaligned loads. Filled unconditionally (16 doubles per
  /// box is noise next to the corners() trig) to keep this header free of
  /// ERPD_LIDAR_SIMD conditionals: the flag is a PRIVATE definition of the
  /// geom target, and a flag-dependent class layout would be an ODR trap
  /// for every other TU that includes this file.
  std::vector<double> edge_ax_, edge_ay_, edge_sx_, edge_sy_;
};

}  // namespace erpd::geom
