#pragma once
// Oriented bounding box (footprint of a vehicle/pedestrian on the ground
// plane). The simulator uses OBBs for occlusion ray casting and for exact
// collision detection between agents.

#include <array>

#include "geom/aabb.hpp"
#include "geom/segment.hpp"
#include "geom/vec2.hpp"

namespace erpd::geom {

class Obb {
 public:
  Obb() = default;
  /// `length` along the heading direction, `width` across it.
  Obb(Vec2 center, double heading, double length, double width);

  Vec2 center() const { return center_; }
  double heading() const { return heading_; }
  double length() const { return length_; }
  double width() const { return width_; }

  /// Corners in CCW order: front-left, rear-left, rear-right, front-right.
  std::array<Vec2, 4> corners() const;

  /// Edges as segments between consecutive corners.
  std::array<Segment, 4> edges() const;

  bool contains(Vec2 p) const;

  /// Separating-axis overlap test.
  bool overlaps(const Obb& o) const;

  /// Minimum distance between the two boxes (0 if overlapping).
  double distance_to(const Obb& o) const;

  /// Distance from a point to the box boundary (0 if inside).
  double distance_to(Vec2 p) const;

  /// First intersection parameter t in [0,1] of a ray segment with the box
  /// boundary, or a negative value if it misses. Hits from inside return 0.
  double ray_hit(const Segment& ray) const;

  Aabb aabb() const;

  /// The diagonal — the paper's "maximum length of the object" used as the
  /// collision-area radius is the object's largest planar dimension.
  double max_extent() const { return std::max(length_, width_); }

 private:
  Vec2 center_{};
  double heading_{0.0};
  double length_{0.0};
  double width_{0.0};
};

}  // namespace erpd::geom
