#include "geom/segment.hpp"

#include <algorithm>
#include <cmath>

namespace erpd::geom {

namespace {
constexpr double kEps = 1e-12;
}

double point_segment_distance(Vec2 p, const Segment& s, double* t_out) {
  const Vec2 d = s.direction();
  const double dd = d.dot(d);
  double t = 0.0;
  if (dd > kEps) t = std::clamp((p - s.a).dot(d) / dd, 0.0, 1.0);
  if (t_out != nullptr) *t_out = t;
  return distance(p, s.point_at(t));
}

CircleCrossings segment_circle_crossings(const Segment& s, Vec2 center,
                                         double radius) {
  CircleCrossings out;
  const Vec2 d = s.direction();
  const Vec2 f = s.a - center;
  const double a = d.dot(d);
  if (a < kEps) return out;  // degenerate segment
  const double b = 2.0 * f.dot(d);
  const double c = f.dot(f) - radius * radius;
  const double disc = b * b - 4.0 * a * c;
  if (disc < 0.0) return out;
  const double sq = std::sqrt(disc);
  const double t1 = (-b - sq) / (2.0 * a);
  const double t2 = (-b + sq) / (2.0 * a);
  for (double t : {t1, t2}) {
    if (t >= 0.0 && t <= 1.0) {
      out.t[out.count++] = t;
    }
  }
  return out;
}

std::optional<IntervalD> segment_in_circle_interval(const Segment& s,
                                                    Vec2 center,
                                                    double radius) {
  const bool a_in = distance_sq(s.a, center) <= radius * radius;
  const bool b_in = distance_sq(s.b, center) <= radius * radius;
  const CircleCrossings x = segment_circle_crossings(s, center, radius);

  if (a_in && b_in) return IntervalD{0.0, 1.0};
  if (a_in) {
    const double exit = x.count > 0 ? x.t[x.count - 1] : 1.0;
    return IntervalD{0.0, exit};
  }
  if (b_in) {
    const double enter = x.count > 0 ? x.t[0] : 0.0;
    return IntervalD{enter, 1.0};
  }
  if (x.count == 2) return IntervalD{x.t[0], x.t[1]};
  return std::nullopt;  // outside, at most tangent
}

std::optional<IntervalD> interval_overlap(IntervalD a, IntervalD b) {
  const double lo = std::max(a.lo, b.lo);
  const double hi = std::min(a.hi, b.hi);
  if (lo > hi) return std::nullopt;
  return IntervalD{lo, hi};
}

double interval_union_length(IntervalD a, IntervalD b) {
  const auto ov = interval_overlap(a, b);
  return a.length() + b.length() - (ov ? ov->length() : 0.0);
}

}  // namespace erpd::geom
