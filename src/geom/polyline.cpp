#include "geom/polyline.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"

namespace erpd::geom {

Polyline::Polyline(std::vector<Vec2> points) : points_(std::move(points)) {
  rebuild_cum();
}

void Polyline::rebuild_cum() {
  cum_.resize(points_.size());
  if (points_.empty()) return;
  cum_[0] = 0.0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    cum_[i] = cum_[i - 1] + distance(points_[i - 1], points_[i]);
  }
}

void Polyline::push_back(Vec2 p) {
  points_.push_back(p);
  if (points_.size() == 1) {
    cum_.push_back(0.0);
  } else {
    cum_.push_back(cum_.back() + distance(points_[points_.size() - 2], p));
  }
}

std::pair<std::size_t, double> Polyline::locate(double s) const {
  ERPD_REQUIRE(!empty(), "Polyline::locate on degenerate polyline");
  // A single point has no segment; everything locates at its start.
  if (points_.size() == 1) return {0, 0.0};
  s = std::clamp(s, 0.0, length());
  // Upper bound over the cumulative table; segment i spans [cum_[i], cum_[i+1]].
  const auto it = std::upper_bound(cum_.begin(), cum_.end(), s);
  std::size_t i = it == cum_.begin()
                      ? 0
                      : static_cast<std::size_t>(it - cum_.begin()) - 1;
  if (i >= points_.size() - 1) i = points_.size() - 2;
  ERPD_DCHECK(i + 1 < points_.size(),
              "Polyline::locate: segment index out of range: ", i);
  return {i, s - cum_[i]};
}

Vec2 Polyline::point_at(double s) const {
  const auto [i, off] = locate(s);
  if (i + 1 >= points_.size()) return points_[i];  // single-point polyline
  const double seg_len = cum_[i + 1] - cum_[i];
  if (seg_len <= 0.0) return points_[i];
  return lerp(points_[i], points_[i + 1], off / seg_len);
}

Vec2 Polyline::tangent_at(double s) const {
  auto [i, off] = locate(s);
  if (i + 1 >= points_.size()) return {};  // single-point polyline
  // Skip zero-length segments.
  while (i + 1 < points_.size() - 1 && cum_[i + 1] - cum_[i] <= 0.0) ++i;
  return (points_[i + 1] - points_[i]).normalized();
}

double Polyline::project(Vec2 p, double* dist_out) const {
  ERPD_REQUIRE(!points_.empty(), "Polyline::project on empty polyline");
  if (points_.size() == 1) {
    if (dist_out != nullptr) *dist_out = distance(p, points_[0]);
    return 0.0;
  }
  double best_d = std::numeric_limits<double>::infinity();
  double best_s = 0.0;
  for (std::size_t i = 0; i + 1 < points_.size(); ++i) {
    const Segment seg{points_[i], points_[i + 1]};
    double t = 0.0;
    const double d = point_segment_distance(p, seg, &t);
    if (d < best_d) {
      best_d = d;
      best_s = cum_[i] + t * (cum_[i + 1] - cum_[i]);
    }
  }
  if (dist_out != nullptr) *dist_out = best_d;
  return best_s;
}

Polyline Polyline::slice(double s0, double s1) const {
  if (empty()) return {};
  s0 = std::clamp(s0, 0.0, length());
  s1 = std::clamp(s1, s0, length());
  std::vector<Vec2> pts;
  pts.push_back(point_at(s0));
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (cum_[i] > s0 && cum_[i] < s1) pts.push_back(points_[i]);
  }
  pts.push_back(point_at(s1));
  return Polyline{std::move(pts)};
}

std::vector<IntervalD> Polyline::circle_intervals(Vec2 center,
                                                  double radius) const {
  std::vector<IntervalD> out;
  if (empty()) return out;
  bool open = false;
  double start = 0.0;
  double end = 0.0;
  for (std::size_t i = 0; i + 1 < points_.size(); ++i) {
    const Segment seg{points_[i], points_[i + 1]};
    const double seg_len = cum_[i + 1] - cum_[i];
    const auto iv = segment_in_circle_interval(seg, center, radius);
    if (!iv) {
      if (open) {
        out.push_back({start, end});
        open = false;
      }
      continue;
    }
    const double lo = cum_[i] + iv->lo * seg_len;
    const double hi = cum_[i] + iv->hi * seg_len;
    if (open && lo <= end + 1e-9) {
      end = hi;  // contiguous with the running interval
    } else {
      if (open) out.push_back({start, end});
      start = lo;
      end = hi;
      open = true;
    }
  }
  if (open) out.push_back({start, end});
  return out;
}

std::optional<Polyline::Crossing> Polyline::first_crossing(
    const Polyline& other) const {
  if (empty() || other.empty()) return std::nullopt;
  for (std::size_t i = 0; i + 1 < points_.size(); ++i) {
    const Segment sa{points_[i], points_[i + 1]};
    const double la = cum_[i + 1] - cum_[i];
    std::optional<Crossing> best;
    for (std::size_t j = 0; j + 1 < other.points_.size(); ++j) {
      const Segment sb{other.points_[j], other.points_[j + 1]};
      if (const auto hit = intersect(sa, sb)) {
        Crossing c;
        c.s_this = cum_[i] + hit->t_first * la;
        c.s_other = other.cum_[j] + hit->t_second * (other.cum_[j + 1] - other.cum_[j]);
        c.point = hit->point;
        if (!best || c.s_this < best->s_this) best = c;
      }
    }
    if (best) return best;  // earliest along this polyline
  }
  return std::nullopt;
}

Polyline Polyline::resampled(double step) const {
  if (empty() || step <= 0.0) return *this;
  std::vector<Vec2> pts;
  const double len = length();
  for (double s = 0.0; s < len; s += step) pts.push_back(point_at(s));
  pts.push_back(points_.back());
  return Polyline{std::move(pts)};
}

}  // namespace erpd::geom
