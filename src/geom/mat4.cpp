#include "geom/mat4.hpp"

#include <cmath>

namespace erpd::geom {

Mat4::Mat4() {
  m_ = {1, 0, 0, 0,  //
        0, 1, 0, 0,  //
        0, 0, 1, 0,  //
        0, 0, 0, 1};
}

Mat4 Mat4::translation(Vec3 t) {
  Mat4 r;
  r.at(0, 3) = t.x;
  r.at(1, 3) = t.y;
  r.at(2, 3) = t.z;
  return r;
}

Mat4 Mat4::rotation_z(double yaw) {
  Mat4 r;
  const double c = std::cos(yaw);
  const double s = std::sin(yaw);
  r.at(0, 0) = c;
  r.at(0, 1) = -s;
  r.at(1, 0) = s;
  r.at(1, 1) = c;
  return r;
}

Mat4 Mat4::rotation_y(double pitch) {
  Mat4 r;
  const double c = std::cos(pitch);
  const double s = std::sin(pitch);
  r.at(0, 0) = c;
  r.at(0, 2) = s;
  r.at(2, 0) = -s;
  r.at(2, 2) = c;
  return r;
}

Mat4 Mat4::rotation_x(double roll) {
  Mat4 r;
  const double c = std::cos(roll);
  const double s = std::sin(roll);
  r.at(1, 1) = c;
  r.at(1, 2) = -s;
  r.at(2, 1) = s;
  r.at(2, 2) = c;
  return r;
}

Mat4 Mat4::from_pose(const Pose& pose) {
  return translation(pose.position) * rotation_z(pose.yaw) *
         rotation_y(pose.pitch) * rotation_x(pose.roll);
}

Mat4 Mat4::operator*(const Mat4& o) const {
  Mat4 r;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      double acc = 0.0;
      for (int k = 0; k < 4; ++k) acc += at(i, k) * o.at(k, j);
      r.at(i, j) = acc;
    }
  }
  return r;
}

Mat4 Mat4::rigid_inverse() const {
  // For T = [R | t; 0 1], T^-1 = [R^T | -R^T t; 0 1].
  Mat4 r;
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) r.at(i, j) = at(j, i);
  const Vec3 t{at(0, 3), at(1, 3), at(2, 3)};
  r.at(0, 3) = -(r.at(0, 0) * t.x + r.at(0, 1) * t.y + r.at(0, 2) * t.z);
  r.at(1, 3) = -(r.at(1, 0) * t.x + r.at(1, 1) * t.y + r.at(1, 2) * t.z);
  r.at(2, 3) = -(r.at(2, 0) * t.x + r.at(2, 1) * t.y + r.at(2, 2) * t.z);
  return r;
}

bool Mat4::almost_equal(const Mat4& o, double eps) const {
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      if (std::abs(at(i, j) - o.at(i, j)) > eps) return false;
  return true;
}

}  // namespace erpd::geom
