#include "geom/voronoi.hpp"

#include <limits>

namespace erpd::geom {

VoronoiPartition::VoronoiPartition(std::vector<Vec2> sites)
    : sites_(std::move(sites)) {}

std::optional<std::size_t> VoronoiPartition::cell_of(Vec2 p) const {
  if (sites_.empty()) return std::nullopt;
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    const double d = distance_sq(p, sites_[i]);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

bool VoronoiPartition::in_cell(Vec2 p, std::size_t site_index) const {
  const auto owner = cell_of(p);
  return owner.has_value() && *owner == site_index;
}

double VoronoiPartition::distance_to_owner(Vec2 p) const {
  const auto owner = cell_of(p);
  if (!owner) return std::numeric_limits<double>::infinity();
  return distance(p, sites_[*owner]);
}

}  // namespace erpd::geom
