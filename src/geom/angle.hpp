#pragma once
// Angle helpers. All angles are radians unless a function name says degrees.

#include <cmath>
#include <numbers>

namespace erpd::geom {

inline constexpr double kPi = std::numbers::pi;
inline constexpr double kTwoPi = 2.0 * std::numbers::pi;

constexpr double deg_to_rad(double deg) { return deg * kPi / 180.0; }
constexpr double rad_to_deg(double rad) { return rad * 180.0 / kPi; }

/// Wrap an angle into (-pi, pi].
inline double wrap_angle(double a) {
  a = std::fmod(a + kPi, kTwoPi);
  if (a <= 0.0) a += kTwoPi;  // map the seam to +pi, not -pi
  return a - kPi;
}

/// Signed smallest difference a-b, in (-pi, pi].
inline double angle_diff(double a, double b) { return wrap_angle(a - b); }

/// Absolute smallest difference, in [0, pi].
inline double angle_dist(double a, double b) { return std::abs(angle_diff(a, b)); }

/// Circular mean of headings. Returns 0 for an empty range.
template <typename It>
double circular_mean(It first, It last) {
  double sx = 0.0;
  double sy = 0.0;
  bool any = false;
  for (It it = first; it != last; ++it) {
    sx += std::cos(*it);
    sy += std::sin(*it);
    any = true;
  }
  // Exact-zero vector sum means the mean direction is undefined; atan2(0, 0)
  // would return an arbitrary-but-valid angle, so pin it to 0 instead. An
  // exact comparison is the point here: any nonzero residual, however tiny,
  // defines a direction.
  if (!any || (sx == 0.0 && sy == 0.0)) return 0.0;  // lint-ok: R6 degenerate-input check
  return std::atan2(sy, sx);
}

/// Circular standard deviation (radians) around the circular mean.
/// Uses the angular-deviation definition sqrt(mean(angle_dist^2)), which is
/// what the crowd clusterer thresholds against (paper threshold gamma).
template <typename It>
double circular_stddev(It first, It last) {
  const double mean = circular_mean(first, last);
  double acc = 0.0;
  std::size_t n = 0;
  for (It it = first; it != last; ++it) {
    const double d = angle_diff(*it, mean);
    acc += d * d;
    ++n;
  }
  if (n == 0) return 0.0;
  return std::sqrt(acc / static_cast<double>(n));
}

}  // namespace erpd::geom
