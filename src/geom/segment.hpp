#pragma once
// Planar segment primitives: intersection tests and distances.
//
// Trajectory intersection (the seed of the paper's collision area) is
// computed by intersecting predicted path segments; the collision-area math
// needs segment/circle crossings to find passing intervals.

#include <algorithm>
#include <cmath>
#include <optional>

#include "geom/vec2.hpp"

namespace erpd::geom {

struct Segment {
  Vec2 a{};
  Vec2 b{};

  Vec2 direction() const { return b - a; }
  double length() const { return (b - a).norm(); }
  Vec2 point_at(double t) const { return lerp(a, b, t); }
};

/// Result of a segment-segment intersection: the point plus the normalized
/// parameters along each segment (both in [0, 1]).
struct SegmentIntersection {
  Vec2 point{};
  double t_first{0.0};
  double t_second{0.0};
};

/// Distance from point `p` to the segment, and the closest point parameter.
double point_segment_distance(Vec2 p, const Segment& s, double* t_out = nullptr);

/// Proper/touching intersection of two segments. Collinear overlapping
/// segments report the first overlapping point of `first`.
///
/// Defined inline: the LiDAR ray caster folds this over box edges and only
/// consumes t_first, so inlining lets the compiler drop the intersection
/// point math entirely on that hot path (dead-code elimination never changes
/// the values that ARE used).
inline std::optional<SegmentIntersection> intersect(const Segment& first,
                                                    const Segment& second) {
  constexpr double kEps = 1e-12;
  const Vec2 r = first.direction();
  const Vec2 s = second.direction();
  const Vec2 qp = second.a - first.a;
  const double denom = r.cross(s);

  if (std::abs(denom) < kEps) {
    // Parallel. Check collinear overlap.
    if (std::abs(qp.cross(r)) > kEps) return std::nullopt;
    const double rr = r.dot(r);
    if (rr < kEps) {
      // `first` degenerates to a point; intersects if it lies on `second`.
      double t2 = 0.0;
      if (point_segment_distance(first.a, second, &t2) < 1e-9) {
        return SegmentIntersection{first.a, 0.0, t2};
      }
      return std::nullopt;
    }
    // Project second's endpoints onto first.
    double t0 = qp.dot(r) / rr;
    double t1 = (qp + s).dot(r) / rr;
    if (t0 > t1) std::swap(t0, t1);
    const double lo = std::max(0.0, t0);
    const double hi = std::min(1.0, t1);
    if (lo > hi) return std::nullopt;
    const Vec2 p = first.point_at(lo);
    double t2 = 0.0;
    point_segment_distance(p, second, &t2);
    return SegmentIntersection{p, lo, t2};
  }

  const double t = qp.cross(s) / denom;
  const double u = qp.cross(r) / denom;
  if (t < -kEps || t > 1.0 + kEps || u < -kEps || u > 1.0 + kEps) {
    return std::nullopt;
  }
  const double tc = std::clamp(t, 0.0, 1.0);
  const double uc = std::clamp(u, 0.0, 1.0);
  return SegmentIntersection{first.point_at(tc), tc, uc};
}

/// Parameters t (ascending, each in [0,1]) where the segment crosses the
/// circle boundary. 0, 1 or 2 entries.
struct CircleCrossings {
  int count{0};
  double t[2]{0.0, 0.0};
};
CircleCrossings segment_circle_crossings(const Segment& s, Vec2 center,
                                         double radius);

/// The sub-interval [t_enter, t_exit] of the segment (normalized parameters)
/// that lies inside the closed disk, or nullopt if the segment misses it.
struct IntervalD {
  double lo{0.0};
  double hi{0.0};
  double length() const { return hi - lo; }
};
std::optional<IntervalD> segment_in_circle_interval(const Segment& s,
                                                    Vec2 center, double radius);

/// Overlap of two closed intervals, or nullopt if disjoint.
std::optional<IntervalD> interval_overlap(IntervalD a, IntervalD b);

/// |a ∪ b| for closed intervals (sum of lengths minus overlap).
double interval_union_length(IntervalD a, IntervalD b);

}  // namespace erpd::geom
