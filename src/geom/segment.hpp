#pragma once
// Planar segment primitives: intersection tests and distances.
//
// Trajectory intersection (the seed of the paper's collision area) is
// computed by intersecting predicted path segments; the collision-area math
// needs segment/circle crossings to find passing intervals.

#include <optional>

#include "geom/vec2.hpp"

namespace erpd::geom {

struct Segment {
  Vec2 a{};
  Vec2 b{};

  Vec2 direction() const { return b - a; }
  double length() const { return (b - a).norm(); }
  Vec2 point_at(double t) const { return lerp(a, b, t); }
};

/// Result of a segment-segment intersection: the point plus the normalized
/// parameters along each segment (both in [0, 1]).
struct SegmentIntersection {
  Vec2 point{};
  double t_first{0.0};
  double t_second{0.0};
};

/// Proper/touching intersection of two segments. Collinear overlapping
/// segments report the first overlapping point of `first`.
std::optional<SegmentIntersection> intersect(const Segment& first,
                                             const Segment& second);

/// Distance from point `p` to the segment, and the closest point parameter.
double point_segment_distance(Vec2 p, const Segment& s, double* t_out = nullptr);

/// Parameters t (ascending, each in [0,1]) where the segment crosses the
/// circle boundary. 0, 1 or 2 entries.
struct CircleCrossings {
  int count{0};
  double t[2]{0.0, 0.0};
};
CircleCrossings segment_circle_crossings(const Segment& s, Vec2 center,
                                         double radius);

/// The sub-interval [t_enter, t_exit] of the segment (normalized parameters)
/// that lies inside the closed disk, or nullopt if the segment misses it.
struct IntervalD {
  double lo{0.0};
  double hi{0.0};
  double length() const { return hi - lo; }
};
std::optional<IntervalD> segment_in_circle_interval(const Segment& s,
                                                    Vec2 center, double radius);

/// Overlap of two closed intervals, or nullopt if disjoint.
std::optional<IntervalD> interval_overlap(IntervalD a, IntervalD b);

/// |a ∪ b| for closed intervals (sum of lengths minus overlap).
double interval_union_length(IntervalD a, IntervalD b);

}  // namespace erpd::geom
