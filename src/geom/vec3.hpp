#pragma once
// 3-D vector used for LiDAR points (sensor frame and world frame, meters).

#include <cmath>
#include <ostream>

#include "geom/vec2.hpp"

namespace erpd::geom {

struct Vec3 {
  double x{0.0};
  double y{0.0};
  double z{0.0};

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}
  constexpr Vec3(Vec2 xy, double z_) : x(xy.x), y(xy.y), z(z_) {}

  constexpr Vec3 operator+(Vec3 o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(Vec3 o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  constexpr Vec3& operator+=(Vec3 o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(Vec3 o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }

  constexpr bool operator==(const Vec3&) const = default;

  constexpr double dot(Vec3 o) const { return x * o.x + y * o.y + z * o.z; }
  constexpr Vec3 cross(Vec3 o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }

  constexpr double norm_sq() const { return x * x + y * y + z * z; }
  double norm() const { return std::sqrt(norm_sq()); }

  Vec3 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec3{x / n, y / n, z / n} : Vec3{};
  }

  /// Planar projection; LiDAR points are reduced to the ground plane for the
  /// traffic map and trajectory math.
  constexpr Vec2 xy() const { return {x, y}; }
};

constexpr Vec3 operator*(double s, Vec3 v) { return v * s; }

inline double distance(Vec3 a, Vec3 b) { return (a - b).norm(); }

inline std::ostream& operator<<(std::ostream& os, Vec3 v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

}  // namespace erpd::geom
