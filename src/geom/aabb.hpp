#pragma once
// Axis-aligned bounding box in the plane.

#include <algorithm>
#include <limits>

#include "geom/vec2.hpp"

namespace erpd::geom {

struct Aabb {
  Vec2 min{std::numeric_limits<double>::infinity(),
           std::numeric_limits<double>::infinity()};
  Vec2 max{-std::numeric_limits<double>::infinity(),
           -std::numeric_limits<double>::infinity()};

  bool empty() const { return min.x > max.x || min.y > max.y; }

  void expand(Vec2 p) {
    min.x = std::min(min.x, p.x);
    min.y = std::min(min.y, p.y);
    max.x = std::max(max.x, p.x);
    max.y = std::max(max.y, p.y);
  }

  void expand(const Aabb& o) {
    if (o.empty()) return;
    expand(o.min);
    expand(o.max);
  }

  bool contains(Vec2 p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }

  bool overlaps(const Aabb& o) const {
    return !(o.min.x > max.x || o.max.x < min.x || o.min.y > max.y ||
             o.max.y < min.y);
  }

  Vec2 center() const { return (min + max) * 0.5; }
  Vec2 extent() const { return max - min; }

  Aabb inflated(double r) const {
    return Aabb{{min.x - r, min.y - r}, {max.x + r, max.y + r}};
  }
};

}  // namespace erpd::geom
