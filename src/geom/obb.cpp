#include "geom/obb.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace erpd::geom {

Obb::Obb(Vec2 center, double heading, double length, double width)
    : center_(center), heading_(heading), length_(length), width_(width) {}

std::array<Vec2, 4> Obb::corners() const {
  const Vec2 fwd = Vec2::from_heading(heading_) * (length_ * 0.5);
  const Vec2 left = Vec2::from_heading(heading_).perp() * (width_ * 0.5);
  return {center_ + fwd + left, center_ - fwd + left, center_ - fwd - left,
          center_ + fwd - left};
}

std::array<Segment, 4> Obb::edges() const {
  const auto c = corners();
  return {Segment{c[0], c[1]}, Segment{c[1], c[2]}, Segment{c[2], c[3]},
          Segment{c[3], c[0]}};
}

bool Obb::contains(Vec2 p) const {
  constexpr double kEps = 1e-9;  // boundary points count as inside
  const Vec2 d = p - center_;
  const Vec2 fwd = Vec2::from_heading(heading_);
  const double lx = d.dot(fwd);
  const double ly = d.dot(fwd.perp());
  return std::abs(lx) <= length_ * 0.5 + kEps &&
         std::abs(ly) <= width_ * 0.5 + kEps;
}

namespace {

// Project corners onto an axis and return [min, max].
std::pair<double, double> project(const std::array<Vec2, 4>& pts, Vec2 axis) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (const Vec2& p : pts) {
    const double v = p.dot(axis);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return {lo, hi};
}

}  // namespace

bool Obb::overlaps(const Obb& o) const {
  const auto ca = corners();
  const auto cb = o.corners();
  const Vec2 axes[4] = {Vec2::from_heading(heading_),
                        Vec2::from_heading(heading_).perp(),
                        Vec2::from_heading(o.heading_),
                        Vec2::from_heading(o.heading_).perp()};
  for (const Vec2& axis : axes) {
    const auto [alo, ahi] = project(ca, axis);
    const auto [blo, bhi] = project(cb, axis);
    if (ahi < blo || bhi < alo) return false;
  }
  return true;
}

double Obb::distance_to(const Obb& o) const {
  if (overlaps(o)) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  for (const Segment& ea : edges()) {
    for (const Segment& eb : o.edges()) {
      // Segments of non-overlapping boxes cannot cross, so the minimum is
      // attained at an endpoint against the other segment.
      best = std::min(best, point_segment_distance(ea.a, eb));
      best = std::min(best, point_segment_distance(ea.b, eb));
      best = std::min(best, point_segment_distance(eb.a, ea));
      best = std::min(best, point_segment_distance(eb.b, ea));
    }
  }
  return best;
}

double Obb::distance_to(Vec2 p) const {
  if (contains(p)) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  for (const Segment& e : edges()) {
    best = std::min(best, point_segment_distance(p, e));
  }
  return best;
}

double Obb::ray_hit(const Segment& ray) const {
  if (contains(ray.a)) return 0.0;
  double best = -1.0;
  for (const Segment& e : edges()) {
    if (const auto hit = intersect(ray, e)) {
      if (best < 0.0 || hit->t_first < best) best = hit->t_first;
    }
  }
  return best;
}

Aabb Obb::aabb() const {
  Aabb box;
  for (const Vec2& c : corners()) box.expand(c);
  return box;
}

}  // namespace erpd::geom
