#include "geom/obb.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#if defined(ERPD_LIDAR_SIMD) && defined(__AVX2__)
#include <immintrin.h>
#endif

namespace erpd::geom {

Obb::Obb(Vec2 center, double heading, double length, double width)
    : center_(center), heading_(heading), length_(length), width_(width) {}

std::array<Vec2, 4> Obb::corners() const {
  const Vec2 fwd = Vec2::from_heading(heading_) * (length_ * 0.5);
  const Vec2 left = Vec2::from_heading(heading_).perp() * (width_ * 0.5);
  return {center_ + fwd + left, center_ - fwd + left, center_ - fwd - left,
          center_ + fwd - left};
}

std::array<Segment, 4> Obb::edges() const {
  const auto c = corners();
  return {Segment{c[0], c[1]}, Segment{c[1], c[2]}, Segment{c[2], c[3]},
          Segment{c[3], c[0]}};
}

bool Obb::contains(Vec2 p) const {
  constexpr double kEps = 1e-9;  // boundary points count as inside
  const Vec2 d = p - center_;
  const Vec2 fwd = Vec2::from_heading(heading_);
  const double lx = d.dot(fwd);
  const double ly = d.dot(fwd.perp());
  return std::abs(lx) <= length_ * 0.5 + kEps &&
         std::abs(ly) <= width_ * 0.5 + kEps;
}

namespace {

// Project corners onto an axis and return [min, max].
std::pair<double, double> project(const std::array<Vec2, 4>& pts, Vec2 axis) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (const Vec2& p : pts) {
    const double v = p.dot(axis);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return {lo, hi};
}

}  // namespace

bool Obb::overlaps(const Obb& o) const {
  const auto ca = corners();
  const auto cb = o.corners();
  const Vec2 axes[4] = {Vec2::from_heading(heading_),
                        Vec2::from_heading(heading_).perp(),
                        Vec2::from_heading(o.heading_),
                        Vec2::from_heading(o.heading_).perp()};
  for (const Vec2& axis : axes) {
    const auto [alo, ahi] = project(ca, axis);
    const auto [blo, bhi] = project(cb, axis);
    if (ahi < blo || bhi < alo) return false;
  }
  return true;
}

double Obb::distance_to(const Obb& o) const {
  if (overlaps(o)) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  for (const Segment& ea : edges()) {
    for (const Segment& eb : o.edges()) {
      // Segments of non-overlapping boxes cannot cross, so the minimum is
      // attained at an endpoint against the other segment.
      best = std::min(best, point_segment_distance(ea.a, eb));
      best = std::min(best, point_segment_distance(ea.b, eb));
      best = std::min(best, point_segment_distance(eb.a, ea));
      best = std::min(best, point_segment_distance(eb.b, ea));
    }
  }
  return best;
}

double Obb::distance_to(Vec2 p) const {
  if (contains(p)) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  for (const Segment& e : edges()) {
    best = std::min(best, point_segment_distance(p, e));
  }
  return best;
}

double Obb::ray_hit(const Segment& ray) const {
  if (contains(ray.a)) return 0.0;
  double best = -1.0;
  for (const Segment& e : edges()) {
    if (const auto hit = intersect(ray, e)) {
      if (best < 0.0 || hit->t_first < best) best = hit->t_first;
    }
  }
  return best;
}

Aabb Obb::aabb() const {
  Aabb box;
  for (const Vec2& c : corners()) box.expand(c);
  return box;
}

void ObbRaySoa::add(const Obb& box, Vec2 eye) {
  const auto e = box.edges();
  edges_.insert(edges_.end(), e.begin(), e.end());
  eye_inside_.push_back(box.contains(eye) ? 1 : 0);
  for (const Segment& s : e) {
    edge_ax_.push_back(s.a.x);
    edge_ay_.push_back(s.a.y);
    edge_sx_.push_back(s.b.x - s.a.x);
    edge_sy_.push_back(s.b.y - s.a.y);
  }
}

#if defined(ERPD_LIDAR_SIMD) && defined(__AVX2__)

double ObbRaySoa::ray_hit(std::size_t i, const Segment& ray) const {
  if (eye_inside_[i] != 0) return 0.0;
  // The general (non-parallel) branch of geom::intersect, four edges per
  // lane set. Every lane performs the scalar branch's exact operation
  // sequence — mul, mul, sub, div on the same inputs — and IEEE arithmetic
  // is deterministic per operation, so lane k's t/u equal the scalar call's
  // for edge k. The near-parallel lanes (|denom| < eps, where intersect
  // falls into its collinear-overlap logic) and the final nearest-hit fold
  // drop back to scalar: the fold keeps intersect's branch semantics (first
  // edge wins distance ties, -0.0 survives the clamp) rather than
  // approximating them with min/max, which differ on signed zeros.
  constexpr double kEps = 1e-12;
  const Vec2 rd = ray.direction();
  const __m256d ax = _mm256_loadu_pd(edge_ax_.data() + 4 * i);
  const __m256d ay = _mm256_loadu_pd(edge_ay_.data() + 4 * i);
  const __m256d sx = _mm256_loadu_pd(edge_sx_.data() + 4 * i);
  const __m256d sy = _mm256_loadu_pd(edge_sy_.data() + 4 * i);
  const __m256d rx = _mm256_set1_pd(rd.x);
  const __m256d ry = _mm256_set1_pd(rd.y);
  const __m256d qpx = _mm256_sub_pd(ax, _mm256_set1_pd(ray.a.x));
  const __m256d qpy = _mm256_sub_pd(ay, _mm256_set1_pd(ray.a.y));
  // denom = r x s, tnum = qp x s, unum = qp x r (2-D cross products).
  const __m256d denom =
      _mm256_sub_pd(_mm256_mul_pd(rx, sy), _mm256_mul_pd(ry, sx));
  const __m256d t = _mm256_div_pd(
      _mm256_sub_pd(_mm256_mul_pd(qpx, sy), _mm256_mul_pd(qpy, sx)), denom);
  const __m256d u = _mm256_div_pd(
      _mm256_sub_pd(_mm256_mul_pd(qpx, ry), _mm256_mul_pd(qpy, rx)), denom);

  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  const int parallel = _mm256_movemask_pd(_mm256_cmp_pd(
      _mm256_and_pd(denom, abs_mask), _mm256_set1_pd(kEps), _CMP_LT_OQ));

  const __m256d lo = _mm256_set1_pd(-kEps);
  const __m256d hi = _mm256_set1_pd(1.0 + kEps);
  __m256d miss = _mm256_or_pd(_mm256_cmp_pd(t, lo, _CMP_LT_OQ),
                              _mm256_cmp_pd(t, hi, _CMP_GT_OQ));
  miss = _mm256_or_pd(miss, _mm256_cmp_pd(u, lo, _CMP_LT_OQ));
  miss = _mm256_or_pd(miss, _mm256_cmp_pd(u, hi, _CMP_GT_OQ));
  const int missed = _mm256_movemask_pd(miss);

  // std::clamp(t, 0, 1) with blends that replicate its branches bit-wise.
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  __m256d tc =
      _mm256_blendv_pd(t, zero, _mm256_cmp_pd(t, zero, _CMP_LT_OQ));
  tc = _mm256_blendv_pd(tc, one, _mm256_cmp_pd(one, tc, _CMP_LT_OQ));
  alignas(32) double tcs[4];
  _mm256_store_pd(tcs, tc);

  double best = -1.0;
  const Segment* e = edges_.data() + 4 * i;
  for (int k = 0; k < 4; ++k) {
    double t_first;
    if ((parallel >> k) & 1) {
      const auto hit = intersect(ray, e[k]);
      if (!hit) continue;
      t_first = hit->t_first;
    } else {
      if ((missed >> k) & 1) continue;
      t_first = tcs[k];
    }
    if (best < 0.0 || t_first < best) best = t_first;
  }
  return best;
}

#else

double ObbRaySoa::ray_hit(std::size_t i, const Segment& ray) const {
  if (eye_inside_[i] != 0) return 0.0;
  const Segment* e = edges_.data() + 4 * i;
  // Same fold as Obb::ray_hit, over the precomputed edges.
  double best = -1.0;
  for (int k = 0; k < 4; ++k) {
    if (const auto hit = intersect(ray, e[k])) {
      if (best < 0.0 || hit->t_first < best) best = hit->t_first;
    }
  }
  return best;
}

#endif  // ERPD_LIDAR_SIMD && __AVX2__

}  // namespace erpd::geom
