#pragma once
// Arc-length parameterized polyline.
//
// Lanes, crosswalks and predicted trajectories are all polylines; the
// simulator advances vehicles by arc length along their lane, and the
// relevance estimator walks predicted paths by arc length to compute passing
// times through the collision area.

#include <optional>
#include <vector>

#include "geom/segment.hpp"
#include "geom/vec2.hpp"

namespace erpd::geom {

class Polyline {
 public:
  Polyline() = default;
  explicit Polyline(std::vector<Vec2> points);

  const std::vector<Vec2>& points() const { return points_; }
  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.size() < 2; }

  /// Total arc length.
  double length() const { return cum_.empty() ? 0.0 : cum_.back(); }

  /// Point at arc length s (clamped to [0, length]).
  Vec2 point_at(double s) const;

  /// Unit tangent at arc length s (heading of the containing segment).
  Vec2 tangent_at(double s) const;
  double heading_at(double s) const { return tangent_at(s).heading(); }

  /// Closest point projection: returns arc length of the closest point.
  /// `dist_out`, if given, receives the distance from p to that point.
  double project(Vec2 p, double* dist_out = nullptr) const;

  /// Sub-polyline covering arc lengths [s0, s1] (clamped, s0 <= s1).
  Polyline slice(double s0, double s1) const;

  /// Append a point, extending the arc-length table.
  void push_back(Vec2 p);

  /// Arc-length intervals where the polyline is inside the closed disk.
  /// Multiple disjoint intervals are possible for winding paths.
  std::vector<IntervalD> circle_intervals(Vec2 center, double radius) const;

  /// First crossing between two polylines, as (arc length on this, arc length
  /// on other, point).
  struct Crossing {
    double s_this{0.0};
    double s_other{0.0};
    Vec2 point{};
  };
  std::optional<Crossing> first_crossing(const Polyline& other) const;

  /// Resample at approximately uniform spacing `step` (keeps endpoints).
  Polyline resampled(double step) const;

 private:
  std::vector<Vec2> points_;
  std::vector<double> cum_;  // cum_[i] = arc length at points_[i]

  void rebuild_cum();
  /// Segment index containing arc length s and the local offset within it.
  std::pair<std::size_t, double> locate(double s) const;
};

}  // namespace erpd::geom
